#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace orochi {
namespace obs {

namespace internal {

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

}  // namespace internal

namespace {

// Formats a double the way the expositions want it: integral values without a trailing
// ".000000", fractional ones with enough digits to round-trip typical micro-resolution
// sums deterministically.
std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  shards_.reserve(internal::kShards);
  for (size_t i = 0; i < internal::kShards; i++) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::Observe(double value) {
  // upper_bound: first bound strictly greater than value would be lower_bound semantics
  // for le-style buckets; Prometheus buckets are "less than or equal", so the bucket is
  // the first bound >= value.
  size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  Shard& shard = *shards_[internal::ShardIndex()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  const double micros = value * 1e6;
  uint64_t add = 0;
  if (micros > 0) {
    add = micros >= 1.8e19 ? UINT64_MAX : static_cast<uint64_t>(std::llround(micros));
  }
  shard.sum_micros.fetch_add(add, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  uint64_t sum_micros = 0;
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < snap.buckets.size(); b++) {
      snap.buckets[b] += shard->counts[b].load(std::memory_order_acquire);
    }
    snap.count += shard->count.load(std::memory_order_acquire);
    sum_micros += shard->sum_micros.load(std::memory_order_acquire);
  }
  snap.sum = static_cast<double>(sum_micros) * 1e-6;
  return snap;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
    it = metrics_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kCounter) {
    static Counter* dummy = new Counter();  // Type misuse: absorb updates, expose nothing.
    return dummy;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kGauge) {
    static Gauge* dummy = new Gauge();
    return dummy;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = metrics_.emplace(name, std::move(e)).first;
  }
  if (it->second.kind != Kind::kHistogram) {
    static Histogram* dummy = new Histogram(std::vector<double>{1});
    return dummy;
  }
  return it->second.histogram.get();
}

std::string MetricsRegistry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : metrics_) {
    out += "# HELP " + name + " " + entry.help + "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + FormatU64(entry.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatI64(entry.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        Histogram::Snapshot snap = entry.histogram->TakeSnapshot();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < snap.bounds.size(); b++) {
          cumulative += snap.buckets[b];
          out += name + "_bucket{le=\"" + FormatDouble(snap.bounds[b]) + "\"} " +
                 FormatU64(cumulative) + "\n";
        }
        cumulative += snap.buckets.back();
        out += name + "_bucket{le=\"+Inf\"} " + FormatU64(cumulative) + "\n";
        out += name + "_sum " + FormatDouble(snap.sum) + "\n";
        out += name + "_count " + FormatU64(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonExposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += "\"" + JsonEscape(name) + "\": " + FormatU64(entry.counter->Value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + JsonEscape(name) + "\": " + FormatI64(entry.gauge->Value());
        break;
      case Kind::kHistogram: {
        Histogram::Snapshot snap = entry.histogram->TakeSnapshot();
        if (!histograms.empty()) histograms += ", ";
        histograms += "\"" + JsonEscape(name) + "\": {\"bounds\": [";
        for (size_t b = 0; b < snap.bounds.size(); b++) {
          if (b > 0) histograms += ", ";
          histograms += FormatDouble(snap.bounds[b]);
        }
        histograms += "], \"buckets\": [";
        for (size_t b = 0; b < snap.buckets.size(); b++) {
          if (b > 0) histograms += ", ";
          histograms += FormatU64(snap.buckets[b]);
        }
        histograms += "], \"count\": " + FormatU64(snap.count) +
                      ", \"sum\": " + FormatDouble(snap.sum) + "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace orochi
