#include "src/obs/trace.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace orochi {
namespace obs {

namespace {

// Chrome-trace (and the metric-name suffixes) want stable lowercase identifiers.
constexpr const char* kPhaseNames[kNumPhases] = {
    "shard_merge",    "pass1_skeleton",    "prepare",       "pass2_io_wait",
    "pass2_execute",  "checkpoint_replay", "pass3_compare",
};

// Stable small integer per thread for chrome-trace "tid" fields.
uint32_t ChromeTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

const char* PhaseName(Phase phase) { return kPhaseNames[static_cast<int>(phase)]; }

double PhaseBreakdown::total_seconds() const {
  double total = 0;
  for (double s : seconds) {
    total += s;
  }
  return total;
}

PhaseBreakdown PhaseBreakdown::DiffSince(const PhaseBreakdown& earlier) const {
  PhaseBreakdown out;
  for (int p = 0; p < kNumPhases; p++) {
    out.seconds[p] = seconds[p] - earlier.seconds[p];
    out.spans[p] = spans[p] - earlier.spans[p];
  }
  return out;
}

std::string PhaseBreakdown::Json() const {
  std::string out = "{";
  for (int p = 0; p < kNumPhases; p++) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": {\"seconds\": %.6f, \"spans\": %" PRIu64 "}",
                  kPhaseNames[p], seconds[p], spans[p]);
    if (p > 0) {
      out += ", ";
    }
    out += buf;
  }
  out += "}";
  return out;
}

PhaseTracer::PhaseTracer(MetricsRegistry* registry)
    : birth_(std::chrono::steady_clock::now()), registry_(registry) {
  if (registry_ != nullptr) {
    for (int p = 0; p < kNumPhases; p++) {
      const std::string stem = std::string("orochi_phase_") + kPhaseNames[p];
      phase_micros_[p] = registry_->GetCounter(
          stem + "_micros_total",
          std::string("wall microseconds spent in the ") + kPhaseNames[p] +
              " audit phase");
      phase_spans_[p] = registry_->GetCounter(
          stem + "_spans_total",
          std::string("spans recorded for the ") + kPhaseNames[p] + " audit phase");
    }
  }
}

PhaseTracer* PhaseTracer::Default() {
  static PhaseTracer* tracer = [] {
    auto* t = new PhaseTracer(MetricsRegistry::Default());
    if (const char* path = std::getenv("OROCHI_TRACE_FILE"); path != nullptr && *path) {
      t->EnableChromeTrace(path);
      // Best-effort dump when the process exits normally (daemons also flush on Stop).
      std::atexit([] { (void)Default()->FlushChromeTrace(); });
    }
    return t;
  }();
  return tracer;
}

void PhaseTracer::EnableChromeTrace(std::string path, size_t max_events) {
  std::lock_guard<std::mutex> lock(chrome_mu_);
  chrome_path_ = std::move(path);
  chrome_max_events_ = max_events;
  chrome_events_.reserve(std::min<size_t>(max_events, 4096));
  chrome_enabled_.store(true, std::memory_order_release);
}

void PhaseTracer::Record(Phase phase, double start_seconds, double duration_seconds) {
  const int p = static_cast<int>(phase);
  const uint64_t nanos =
      duration_seconds > 0 ? static_cast<uint64_t>(std::llround(duration_seconds * 1e9))
                           : 0;
  Shard& shard = shards_[internal::ShardIndex()];
  shard.nanos[p].fetch_add(nanos, std::memory_order_relaxed);
  shard.spans[p].fetch_add(1, std::memory_order_relaxed);
  if (phase_micros_[p] != nullptr) {
    phase_micros_[p]->Inc(nanos / 1000);
    phase_spans_[p]->Inc();
  }
  if (chrome_enabled_.load(std::memory_order_acquire)) {
    ChromeEvent event;
    event.phase = phase;
    event.start_micros =
        start_seconds > 0 ? static_cast<uint64_t>(std::llround(start_seconds * 1e6)) : 0;
    event.dur_micros = nanos / 1000;
    event.tid = ChromeTid();
    std::lock_guard<std::mutex> lock(chrome_mu_);
    if (chrome_events_.size() < chrome_max_events_) {
      chrome_events_.push_back(event);
    } else {
      chrome_dropped_++;
    }
  }
}

PhaseBreakdown PhaseTracer::totals() const {
  PhaseBreakdown out;
  for (const Shard& shard : shards_) {
    for (int p = 0; p < kNumPhases; p++) {
      out.seconds[p] +=
          static_cast<double>(shard.nanos[p].load(std::memory_order_acquire)) * 1e-9;
      out.spans[p] += shard.spans[p].load(std::memory_order_acquire);
    }
  }
  return out;
}

double PhaseTracer::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - birth_).count();
}

Status PhaseTracer::FlushChromeTrace() {
  if (!chrome_enabled_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  std::vector<ChromeEvent> events;
  std::string path;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(chrome_mu_);
    events = chrome_events_;
    path = chrome_path_;
    dropped = chrome_dropped_;
  }
  // Plain stdio on purpose: obs sits below src/common, so it cannot use Env without a
  // dependency cycle — and the trace dump is diagnostic output, not audit state.
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Error("obs: cannot open trace file " + path);
  }
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  for (size_t i = 0; i < events.size(); i++) {
    const ChromeEvent& e = events[i];
    std::fprintf(f,
                 "{\"name\": \"%s\", \"cat\": \"audit\", \"ph\": \"X\", \"ts\": %" PRIu64
                 ", \"dur\": %" PRIu64 ", \"pid\": 1, \"tid\": %u}%s\n",
                 PhaseName(e.phase), e.start_micros, e.dur_micros, e.tid,
                 i + 1 < events.size() ? "," : "");
  }
  std::fprintf(f, "]");
  if (dropped > 0) {
    std::fprintf(f, ", \"droppedEvents\": %" PRIu64, dropped);
  }
  std::fprintf(f, "}\n");
  if (std::fclose(f) != 0) {
    return Status::Error("obs: short write flushing trace file " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace orochi
