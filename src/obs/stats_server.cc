#include "src/obs/stats_server.h"

#include <cstdio>
#include <utility>

namespace orochi {
namespace obs {

namespace {

// Requests are one line plus a few headers; anything past this is not a stats scrape.
constexpr size_t kMaxRequestBytes = 8192;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK\r\n";
    case 400:
      return "HTTP/1.0 400 Bad Request\r\n";
    case 404:
      return "HTTP/1.0 404 Not Found\r\n";
    case 405:
      return "HTTP/1.0 405 Method Not Allowed\r\n";
    default:
      return "HTTP/1.0 500 Internal Server Error\r\n";
  }
}

void WriteResponse(Connection* conn, int code, const std::string& content_type,
                   const std::string& body) {
  char length[64];
  std::snprintf(length, sizeof(length), "Content-Length: %zu\r\n", body.size());
  std::string response = StatusLine(code) + "Content-Type: " + content_type + "\r\n" +
                         length + "Connection: close\r\n\r\n" + body;
  (void)conn->WriteAll(response);  // Best effort: a vanished scraper is not our problem.
}

}  // namespace

void StatsServer::Handle(std::string path, std::string content_type, Handler handler) {
  routes_[std::move(path)] = Route{std::move(content_type), std::move(handler)};
}

Status StatsServer::Start(const std::string& address, Transport* transport) {
  if (started_) {
    return Status::Error("obs: stats server already started");
  }
  auto listener = ResolveTransport(transport)->Listen(address);
  if (!listener.ok()) {
    return Status::Error("obs: stats listen failed: " + listener.error());
  }
  listener_ = std::move(listener).value();
  address_ = listener_->address();
  stopping_ = false;
  thread_ = std::thread([this] { Serve(); });
  started_ = true;
  return Status::Ok();
}

void StatsServer::Stop() {
  if (!started_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (active_ != nullptr) {
      active_->Shutdown();
    }
  }
  listener_->Close();
  thread_.join();
  listener_.reset();
  started_ = false;
}

void StatsServer::Serve() {
  for (;;) {
    auto accepted = listener_->Accept();
    if (!accepted.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      continue;  // Transient accept failure (e.g. injected fault): keep serving.
    }
    std::unique_ptr<Connection> conn = std::move(accepted).value();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      active_ = conn.get();
    }
    HandleConnection(conn.get());
    conn->Shutdown();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_ = nullptr;
    }
  }
}

void StatsServer::HandleConnection(Connection* conn) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    auto n = conn->ReadSome(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) {
      break;  // Peer vanished or closed before finishing the request line.
    }
    request.append(buf, n.value());
  }

  // Parse "METHOD SP TARGET SP VERSION" from the first line.
  const size_t eol = request.find_first_of("\r\n");
  const std::string line = eol == std::string::npos ? request : request.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (line.empty() || sp1 == std::string::npos || sp2 == std::string::npos ||
      sp2 == sp1 + 1 || line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    WriteResponse(conn, 400, "text/plain", "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const size_t q = target.find('?'); q != std::string::npos) {
    target.resize(q);  // Route on the path; scrapers sometimes append cache-busters.
  }
  if (method != "GET") {
    WriteResponse(conn, 405, "text/plain", "method not allowed\n");
    return;
  }
  auto it = routes_.find(target);
  if (it == routes_.end()) {
    std::string known = "not found; endpoints:";
    for (const auto& [path, route] : routes_) {
      known += " " + path;
    }
    WriteResponse(conn, 404, "text/plain", known + "\n");
    return;
  }
  WriteResponse(conn, 200, it->second.content_type, it->second.handler());
}

}  // namespace obs
}  // namespace orochi
