// Minimal HTTP/1.0 stats endpoint served over the repo's Transport abstraction, so it
// speaks both "tcp:HOST:PORT" and "unix:/path" addresses and tests can drive it through
// a FaultInjectingTransport. orochi-auditd mounts /metrics (Prometheus text), /metrics.json,
// /epochs, and /shards on it when OROCHI_STATS_ADDRESS is set.
//
// Scope is deliberately tiny: GET only, one response per connection, no keep-alive, no
// request bodies. Handlers are registered before Start and render their payload at
// request time. Malformed requests get 400, unknown paths 404, non-GET methods 405 —
// never a crash, never a hung scraper.
#ifndef SRC_OBS_STATS_SERVER_H_
#define SRC_OBS_STATS_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/result.h"
#include "src/net/transport.h"

namespace orochi {
namespace obs {

class StatsServer {
 public:
  // Renders the response body for one request. Called from the server thread; must be
  // safe to invoke concurrently with the instrumented process (registry snapshots are).
  using Handler = std::function<std::string()>;

  StatsServer() = default;
  ~StatsServer() { Stop(); }
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Registers `handler` for GET `path` (exact match; query strings are stripped).
  // Must be called before Start.
  void Handle(std::string path, std::string content_type, Handler handler);

  // Binds `address` ("tcp:HOST:PORT" or "unix:/path"; nullptr transport = the default
  // POSIX transport) and starts the serving thread. The bound address — with tcp port 0
  // resolved — is available from address() afterwards.
  Status Start(const std::string& address, Transport* transport = nullptr);

  // Stops accepting, unblocks any in-flight request, and joins the serving thread.
  // Idempotent; also run by the destructor.
  void Stop();

  const std::string& address() const { return address_; }

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void Serve();
  void HandleConnection(Connection* conn);

  std::map<std::string, Route> routes_;
  std::unique_ptr<Listener> listener_;
  std::string address_;
  std::thread thread_;
  bool started_ = false;

  std::mutex mu_;  // Guards active_ (the connection Stop may need to unblock).
  Connection* active_ = nullptr;
  bool stopping_ = false;
};

}  // namespace obs
}  // namespace orochi

#endif  // SRC_OBS_STATS_SERVER_H_
