// Lock-cheap metrics for the audit pipeline: monotonic counters, gauges, and
// fixed-bucket histograms, collected in a registry that snapshots to JSON and
// Prometheus-style text exposition (served by src/obs/stats_server.h).
//
// Design constraints, in order:
//   1. Hot paths never contend. Counter and Histogram updates land in one of several
//      cache-line-padded shards chosen per thread, so two workers bumping the same
//      metric never touch the same cache line. No update path takes a lock.
//   2. Reads are exact. A snapshot sums the shards with acquire loads, so a quiescent
//      registry reports exactly the updates that happened-before the read (the TSan
//      exactness tests in tests/obs_test.cc rely on this).
//   3. Registration is cheap to amortize. Call-site idiom:
//        static obs::Counter* const fsyncs = obs::MetricsRegistry::Default()->GetCounter(
//            "orochi_io_fsyncs_total", "fsync calls issued by spill writers");
//        fsyncs->Inc();
//      The function-local static makes the name lookup a one-time cost.
//
// This header sits below src/common (orochi_common links orochi_obs), so every layer —
// io_env included — can record without dependency cycles.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace orochi {
namespace obs {

namespace internal {
// One cache-line-padded atomic cell. 64 is the common x86/ARM line size; a wrong guess
// costs false sharing, never correctness.
struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};
// Shard count for per-thread striping: enough that a dozen audit workers rarely collide,
// small enough that summing on snapshot stays trivial.
inline constexpr size_t kShards = 16;
// The calling thread's stable shard index (assigned round-robin at first use).
size_t ShardIndex();
}  // namespace internal

// Monotonic counter. Inc is a relaxed fetch_add on a per-thread shard.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    shards_[internal::ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  internal::PaddedU64 shards_[internal::kShards];
};

// Gauge: a value that goes up and down (or a monotone high-water mark via SetMax).
// A single atomic — gauges are set at phase boundaries, not in per-op hot loops.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  // Monotone ratchet: keeps the largest value ever set (peak resident bytes etc.).
  void SetMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket histogram for latencies and sizes. Bucket bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the tail. The sum is kept in
// micro-units (value * 1e6, rounded to nearest) so updates stay integer atomics —
// exact for the micro-resolution values the pipeline records.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;     // Upper bounds, ascending; +Inf implicit at the end.
    std::vector<uint64_t> buckets;  // bounds.size() + 1 cumulative-free per-bucket counts.
    uint64_t count = 0;
    double sum = 0;  // Reconstructed from micro-units.
  };
  Snapshot TakeSnapshot() const;

 private:
  struct alignas(64) Shard {
    explicit Shard(size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_micros{0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Name -> metric registry. Get* registers on first use and returns the same pointer on
// every later call (pointers stay valid for the registry's lifetime). Asking for an
// existing name as a different metric type returns a process-wide dummy metric instead
// of crashing — the misuse shows up as a missing series in the exposition, never as UB.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every built-in instrument records into.
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  // `bounds` only applies on first registration; later calls get the existing histogram.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  // Prometheus-style text exposition: "# HELP"/"# TYPE" then samples, metrics in name
  // order, histograms as name_bucket{le="..."} / name_sum / name_count. Deterministic
  // for a quiescent registry.
  std::string TextExposition() const;
  // The same snapshot as one JSON object: {"counters":{...},"gauges":{...},
  // "histograms":{name:{"bounds":[...],"buckets":[...],"count":n,"sum":s}}}.
  std::string JsonExposition() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;  // Guards the map shape only; updates never take it.
  std::map<std::string, Entry> metrics_;
};

// Escapes a string for embedding in a JSON string literal (shared by the expositions
// and the service's /epochs /shards endpoints).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace orochi

#endif  // SRC_OBS_METRICS_H_
