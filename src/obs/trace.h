// Audit-phase tracing: scoped TraceSpans emitted by the audit pipeline aggregate into a
// per-epoch phase-decomposition record — the runtime twin of the paper's Figure 9 (audit
// cost split into report processing / storage build / re-execution / comparison), extended
// with the phases the grown system added (pass-1 skeleton streaming, shard merge,
// checkpoint replay).
//
//   {
//     obs::TraceSpan span(tracer, obs::Phase::kPrepare);
//     ctx.Prepare();
//   }  // records wall time + one chrome-trace event (when enabled) on destruction
//
// A PhaseTracer accumulates into cache-line-padded per-thread shards (same discipline as
// obs::Counter — hot paths never contend) and mirrors totals into the default
// MetricsRegistry as orochi_phase_<name>_micros_total / _spans_total counters. When
// OROCHI_TRACE_FILE is set, the default tracer additionally buffers one event per span
// and dumps Chrome-trace JSON (load it in chrome://tracing or https://ui.perfetto.dev)
// at process exit or on FlushChromeTrace().
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace orochi {
namespace obs {

// The audit pipeline's phases, in pipeline order. Keep PhaseName in sync.
enum class Phase : int {
  kShardMerge = 0,       // Merge-join of shard spill pairs (FeedShardedEpoch).
  kPass1Skeleton,        // Streaming trace/reports files into skeletons + offset indexes.
  kPrepare,              // Report processing + versioned-store builds (Figure 9's first two).
  kPass2IoWait,          // Worker time blocked in the chunk gate paging bytes in (budget
                         // waits + preads the prefetcher did not hide).
  kPass2Execute,         // One span per re-executed group chunk (grouped re-execution).
  kCheckpointReplay,     // Journaled chunks replayed instead of re-executed on resume.
  kPass3Compare,         // Produced-output vs. trace comparison.
};
inline constexpr int kNumPhases = 7;
const char* PhaseName(Phase phase);

// Per-phase wall seconds + span counts. For one epoch this is the phase-decomposition
// record; the tracer's totals() is the same shape accumulated over the process lifetime.
struct PhaseBreakdown {
  double seconds[kNumPhases] = {};
  uint64_t spans[kNumPhases] = {};

  double total_seconds() const;
  // The per-epoch record: this snapshot minus an `earlier` snapshot of the same tracer.
  PhaseBreakdown DiffSince(const PhaseBreakdown& earlier) const;
  // Renders {"prepare": {"seconds": s, "spans": n}, ...} for the /epochs endpoint.
  std::string Json() const;
};

class PhaseTracer {
 public:
  // A private tracer (tests, concurrent sessions that want isolated attribution).
  // `registry` nullptr = do not mirror into any registry.
  explicit PhaseTracer(MetricsRegistry* registry = nullptr);

  // The process-wide tracer the pipeline uses when AuditOptions::tracer is null. Mirrors
  // into MetricsRegistry::Default() and — when OROCHI_TRACE_FILE was set at first use —
  // buffers chrome-trace events, flushed at process exit.
  static PhaseTracer* Default();

  // Buffers chrome-trace events for every span until `max_events`, after which events are
  // dropped (and counted); FlushChromeTrace writes them to `path` as Chrome-trace JSON.
  void EnableChromeTrace(std::string path, size_t max_events = 1 << 20);
  Status FlushChromeTrace();

  // Records one completed span. `start_seconds` is NowSeconds() at span entry.
  void Record(Phase phase, double start_seconds, double duration_seconds);

  PhaseBreakdown totals() const;
  // Monotonic seconds since this tracer was created (span timestamps' epoch).
  double NowSeconds() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> nanos[kNumPhases] = {};
    std::atomic<uint64_t> spans[kNumPhases] = {};
  };
  struct ChromeEvent {
    Phase phase;
    uint64_t start_micros;
    uint64_t dur_micros;
    uint32_t tid;
  };

  const std::chrono::steady_clock::time_point birth_;
  MetricsRegistry* const registry_;
  Counter* phase_micros_[kNumPhases] = {};
  Counter* phase_spans_[kNumPhases] = {};
  Shard shards_[internal::kShards];

  std::atomic<bool> chrome_enabled_{false};
  std::mutex chrome_mu_;  // Guards the event buffer + path (span completion only).
  std::string chrome_path_;
  size_t chrome_max_events_ = 0;
  std::vector<ChromeEvent> chrome_events_;
  uint64_t chrome_dropped_ = 0;
};

// nullptr resolves to the process-wide tracer, mirroring ResolveEnv / ResolveTransport.
inline PhaseTracer* ResolveTracer(PhaseTracer* tracer) {
  return tracer != nullptr ? tracer : PhaseTracer::Default();
}

// RAII span: times its scope and records into the tracer on destruction.
class TraceSpan {
 public:
  TraceSpan(PhaseTracer* tracer, Phase phase)
      : tracer_(ResolveTracer(tracer)), phase_(phase), start_(tracer_->NowSeconds()) {}
  ~TraceSpan() { tracer_->Record(phase_, start_, tracer_->NowSeconds() - start_); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  PhaseTracer* const tracer_;
  const Phase phase_;
  const double start_;
};

}  // namespace obs
}  // namespace orochi

#endif  // SRC_OBS_TRACE_H_
