#include "src/net/fault_transport.h"

#include <utility>

#include "src/common/hash.h"
#include "src/common/io_env.h"

namespace orochi {

namespace {

// A faulted connection. Once an injected disconnect fires the connection is dead for
// good — every later operation fails the same way, exactly like a real reset socket.
class FaultConnection : public Connection {
 public:
  FaultConnection(FaultInjectingTransport* owner, std::unique_ptr<Connection> base)
      : owner_(owner), base_(std::move(base)) {}

  Result<size_t> ReadSome(char* buf, size_t n) override {
    if (dead_.load()) {
      return Result<size_t>::Error(DeadError("recv"));
    }
    if (owner_->Draw() < owner_->options().p_disconnect_read) {
      Die("recv");
      return Result<size_t>::Error(DeadError("recv"));
    }
    return base_->ReadSome(buf, n);
  }

  Status WriteAll(const char* data, size_t n) override {
    if (dead_.load()) {
      return Status::Error(DeadError("send"));
    }
    const NetFaultOptions& o = owner_->options();
    if (owner_->TakeKillSlot()) {
      Die("send");
      return Status::Error(DeadError("send"));
    }
    double d = owner_->Draw();
    if (d < o.p_disconnect_write) {
      Die("send");
      return Status::Error(DeadError("send"));
    }
    d -= o.p_disconnect_write;
    if (d < o.p_short_write && n > 1) {
      // A strict prefix reaches the wire, then the connection dies — the receiver sees a
      // frame cut off mid-stream, which must classify as retryable, never tamper.
      size_t prefix = 1 + static_cast<size_t>(
                              Mix64(owner_->options().seed ^ (n * 0x9e3779b97f4a7c15ull)) %
                              (n - 1));
      (void)base_->WriteAll(data, prefix);
      Die("send");
      return Status::Error(DeadError("send (short write, " + std::to_string(prefix) +
                                     " of " + std::to_string(n) + " bytes landed)"));
    }
    d -= o.p_short_write;
    if (d < o.p_corrupt_write && n > 0) {
      // One byte flips in flight; the full buffer still lands, so the receiver's frame
      // CRC — not a length check — must catch it.
      owner_->CountCorruption();
      std::string copy(data, n);
      size_t at = static_cast<size_t>(
          Mix64(owner_->options().seed ^ (n + 0x517cc1b727220a95ull)) % n);
      copy[at] = static_cast<char>(copy[at] ^ 0x20);
      return base_->WriteAll(copy.data(), copy.size());
    }
    return base_->WriteAll(data, n);
  }

  void Shutdown() override { base_->Shutdown(); }

  const std::string& peer() const override { return base_->peer(); }

 private:
  std::string DeadError(const std::string& op) {
    return MakeTransientIoError("net: injected disconnect during " + op + " to " +
                                base_->peer());
  }

  void Die(const char* op) {
    (void)op;
    dead_.store(true);
    owner_->CountDisconnect();
    // Kill the real socket too, so the un-faulted peer observes a genuine disconnect
    // instead of a connection that silently went quiet.
    base_->Shutdown();
  }

  FaultInjectingTransport* owner_;
  std::unique_ptr<Connection> base_;
  std::atomic<bool> dead_{false};
};

}  // namespace

double FaultInjectingTransport::Draw() {
  uint64_t index = op_index_.fetch_add(1);
  uint64_t bits = Mix64(options_.seed ^ Mix64(index + 0x2545f4914f6cdd1dull));
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa.
}

bool FaultInjectingTransport::TakeKillSlot() {
  if (options_.disconnect_after_writes == NetFaultOptions::kNever) {
    return false;
  }
  // Exactly one write observes the 1 -> 0 transition; later writes go negative and pass
  // through (the connection that took the kill is already dead).
  return remaining_writes_.fetch_sub(1) == 0;
}

Result<std::unique_ptr<Connection>> FaultInjectingTransport::Connect(
    const std::string& address) {
  Result<std::unique_ptr<Connection>> base = base_->Connect(address);
  if (!base.ok()) {
    return base;
  }
  return Result<std::unique_ptr<Connection>>(
      std::make_unique<FaultConnection>(this, std::move(base.value())));
}

}  // namespace orochi
