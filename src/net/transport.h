// Socket transport between trace collectors and the audit service (the paper's §2/§6
// deployment: collectors next to untrusted web servers, a trusted verifier elsewhere).
// Mirrors the Env design of src/common/io_env.h: production code goes through
// Transport::Default() (POSIX TCP + Unix-domain sockets); tests wrap it in a
// FaultInjectingTransport (src/net/fault_transport.h) to replay deterministic schedules
// of disconnects, short writes, and in-flight corruption.
//
// Addresses are strings so they can ride in env knobs:
//   "tcp:HOST:PORT"  — IPv4 loopback/numeric host; PORT 0 binds an ephemeral port and
//                      Listener::address() reports the one actually bound.
//   "unix:/path"     — Unix-domain stream socket at /path (removed and rebound on listen).
//
// Error taxonomy (shared with the file layer, so AuditOutcome classification just works):
//   - disconnects, resets, and reads cut off mid-stream tag transient
//     ("io-transient: net: ..."): the peer can reconnect and resume.
//   - malformed addresses and bind/listen failures are permanent ("net: ...").
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/result.h"

namespace orochi {

// One bidirectional byte stream. Implementations must be usable from two threads at once
// only in the one-reader + one-writer pattern; Shutdown may be called from any thread and
// unblocks a pending read.
class Connection {
 public:
  virtual ~Connection() = default;

  // One best-effort read of up to `n` bytes. Returns the count read; 0 means the peer
  // closed cleanly. Errors are transient-tagged when they amount to a disconnect.
  virtual Result<size_t> ReadSome(char* buf, size_t n) = 0;
  // Writes all `n` bytes or errors (transient-tagged on disconnect mid-write).
  virtual Status WriteAll(const char* data, size_t n) = 0;
  Status WriteAll(const std::string& data) { return WriteAll(data.data(), data.size()); }
  // Half-kills both directions: a blocked ReadSome returns, later writes fail.
  virtual void Shutdown() = 0;
  // Human-readable peer name for error messages ("tcp:127.0.0.1:4711", "unix:/run/x").
  virtual const std::string& peer() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Blocks for the next inbound connection. After Close(), returns an error.
  virtual Result<std::unique_ptr<Connection>> Accept() = 0;
  // Unblocks a pending Accept and stops accepting. Idempotent.
  virtual void Close() = 0;
  // The address actually bound — resolves "tcp:...:0" to the real ephemeral port, so a
  // test (or a daemon printing its address) can hand it to clients.
  virtual const std::string& address() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> Listen(const std::string& address) = 0;
  virtual Result<std::unique_ptr<Connection>> Connect(const std::string& address) = 0;

  // The production POSIX socket transport; a process-lifetime singleton.
  static Transport* Default();
};

// nullptr resolves to Transport::Default() — every transport-threaded API takes an
// optional Transport*.
inline Transport* ResolveTransport(Transport* t) {
  return t != nullptr ? t : Transport::Default();
}

}  // namespace orochi

#endif  // SRC_NET_TRANSPORT_H_
