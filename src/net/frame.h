// Length-framed messages between CollectorClient and the audit service, riding the
// wire-format v2 record frame (u8 type, u64 length, u32 CRC32C(payload), payload) over a
// Connection — one CRC discipline for files and sockets.
//
// Protocol (client = a collector shard, service = the verifier-side daemon):
//
//   client                                service
//   ── Hello{version, shard, epoch} ──────►   registers/looks up the (epoch, shard) stream
//   ◄─ HelloAck{received counts, sealed,      resume point: the client re-sends data
//              max in-flight, ack interval}   records from these indexes
//   ── TraceRecord{index, rec type, bytes} ─► spooled in order; duplicates (< received
//   ── ReportsRecord{index, rec type, bytes}► count, a resume overlap) are skipped
//   ◄─ Ack{received counts}                   every ack-interval records — the client
//                                             bounds unacked bytes by max in-flight
//   ── EndEpoch{total counts} ────────────►   totals must match; spool files seal
//   ◄─ EpochSealed{epoch}                     (footer + fsync + rename into place)
//   ◄─ Error{code, message}                   any time: retryable / corruption / protocol
//
// Failure taxonomy: a disconnect or a frame cut off mid-stream is retryable I/O
// ("io-transient: net: ..." — reconnect and resume, NEVER tamper evidence); a frame whose
// CRC does not match is localized corruption ("wire: ..."), never silently accepted — the
// record is not spooled and the sender re-sends it after the resume handshake.
#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/net/transport.h"

namespace orochi {
namespace net {

// First field of every Hello, so a stray non-orochi peer is rejected before anything
// else is parsed.
inline constexpr uint32_t kProtocolMagic = 0x4F524348;  // "HCRO" little-endian.

// Frame types (the u8 of the record frame).
inline constexpr uint8_t kFrameHello = 1;          // client → service
inline constexpr uint8_t kFrameHelloAck = 2;       // service → client
inline constexpr uint8_t kFrameTraceRecord = 3;    // client → service
inline constexpr uint8_t kFrameReportsRecord = 4;  // client → service
inline constexpr uint8_t kFrameEndEpoch = 5;       // client → service
inline constexpr uint8_t kFrameAck = 6;            // service → client
inline constexpr uint8_t kFrameEpochSealed = 7;    // service → client
inline constexpr uint8_t kFrameError = 8;          // either direction

// A forged length must not make a receiver attempt a huge allocation; no legitimate
// trace/reports record approaches this.
inline constexpr uint64_t kMaxFramePayloadBytes = 64ull << 20;

struct HelloFrame {
  uint32_t format_version = 0;  // wire::kFormatVersion the client will encode with.
  uint32_t shard_id = 0;        // Nonzero: the collector's stamp.
  uint64_t epoch = 0;
};

struct HelloAckFrame {
  uint64_t trace_received = 0;    // Records already spooled — the client's resume point.
  uint64_t reports_received = 0;
  uint8_t sealed = 0;             // The epoch/shard stream already sealed (late rejoin).
  uint64_t max_in_flight_bytes = 0;   // Backpressure bound the service enforces.
  uint64_t ack_interval_records = 0;  // How often the service acks.
};

// One trace/reports section record in flight. `index` is the record's position in its
// stream (0-based, per section), so a resumed client re-sending from the acked count is
// deduplicated exactly; a gap is a protocol error, never silently spooled around.
struct RecordFrame {
  uint64_t index = 0;
  uint8_t record_type = 0;  // wire::kTraceRec* / wire::kReportsRec*.
  std::string payload;      // The record's canonical wire payload bytes.
};

struct EndEpochFrame {
  uint64_t trace_records = 0;    // Totals the spooled streams must match to seal.
  uint64_t reports_records = 0;
};

struct AckFrame {
  uint64_t trace_received = 0;
  uint64_t reports_received = 0;
};

struct EpochSealedFrame {
  uint64_t epoch = 0;
};

enum class ErrorCode : uint8_t {
  kRetryable = 1,   // Reconnect and resume (attached stream busy, shutdown, ...).
  kCorruption = 2,  // A frame failed its CRC — re-send after the resume handshake.
  kProtocol = 3,    // Version/handshake/sequence violation — do not retry.
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kProtocol;
  std::string message;
};

// --- payload codecs (all decoders parse defensively and never crash on forged bytes) ---

std::string EncodeHello(const HelloFrame& f);
Result<HelloFrame> DecodeHello(const std::string& payload);
std::string EncodeHelloAck(const HelloAckFrame& f);
Result<HelloAckFrame> DecodeHelloAck(const std::string& payload);
std::string EncodeRecord(const RecordFrame& f);
Result<RecordFrame> DecodeRecord(const std::string& payload);
std::string EncodeEndEpoch(const EndEpochFrame& f);
Result<EndEpochFrame> DecodeEndEpoch(const std::string& payload);
std::string EncodeAck(const AckFrame& f);
Result<AckFrame> DecodeAck(const std::string& payload);
std::string EncodeEpochSealed(const EpochSealedFrame& f);
Result<EpochSealedFrame> DecodeEpochSealed(const std::string& payload);
std::string EncodeError(const ErrorFrame& f);
Result<ErrorFrame> DecodeError(const std::string& payload);

// Reads one CRC-checked frame at a time off a connection.
class FrameReader {
 public:
  explicit FrameReader(Connection* conn) : conn_(conn) {}

  // True: *type/*payload hold the next frame (CRC verified). False: the peer closed
  // cleanly at a frame boundary. Errors: a close mid-frame is transient-tagged
  // ("io-transient: net: ..."), a CRC mismatch is "wire: ..." corruption.
  Result<bool> Next(uint8_t* type, std::string* payload);

  uint64_t frames_read() const { return frames_read_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  Connection* conn_;
  uint64_t frames_read_ = 0;
  uint64_t bytes_read_ = 0;
};

// Writes frames; reusable scratch keeps a hot sender allocation-free.
class FrameWriter {
 public:
  explicit FrameWriter(Connection* conn) : conn_(conn) {}

  Status Send(uint8_t type, const std::string& payload);

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  Connection* conn_;
  std::string scratch_;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace net
}  // namespace orochi

#endif  // SRC_NET_FRAME_H_
