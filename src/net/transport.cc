#include "src/net/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "src/common/io_env.h"

namespace orochi {

namespace {

std::string Errno(const std::string& what) { return what + ": " + std::strerror(errno); }

// A disconnect-shaped socket error: the peer can reconnect and resume, so it is
// transient-tagged like a retryable file read.
Status TransientNetError(const std::string& detail) {
  return Status::Error(MakeTransientIoError("net: " + detail));
}

struct ParsedAddress {
  bool is_unix = false;
  std::string host;  // tcp only
  uint16_t port = 0;  // tcp only
  std::string path;  // unix only
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress out;
  if (address.compare(0, 5, "unix:") == 0) {
    out.is_unix = true;
    out.path = address.substr(5);
    if (out.path.empty()) {
      return Result<ParsedAddress>::Error("net: empty unix socket path in '" + address + "'");
    }
    sockaddr_un probe;
    if (out.path.size() >= sizeof(probe.sun_path)) {
      return Result<ParsedAddress>::Error("net: unix socket path too long in '" + address +
                                          "'");
    }
    return out;
  }
  if (address.compare(0, 4, "tcp:") == 0) {
    size_t colon = address.rfind(':');
    if (colon == 3 || colon == std::string::npos) {
      return Result<ParsedAddress>::Error("net: missing port in '" + address + "'");
    }
    out.host = address.substr(4, colon - 4);
    if (out.host.empty() || out.host == "localhost") {
      out.host = "127.0.0.1";
    }
    uint64_t port = 0;
    bool any = false;
    for (size_t i = colon + 1; i < address.size(); i++) {
      char c = address[i];
      if (c < '0' || c > '9' || port > 65535) {
        any = false;
        break;
      }
      port = port * 10 + static_cast<uint64_t>(c - '0');
      any = true;
    }
    if (!any || port > 65535) {
      return Result<ParsedAddress>::Error("net: invalid port in '" + address + "'");
    }
    out.port = static_cast<uint16_t>(port);
    return out;
  }
  return Result<ParsedAddress>::Error(
      "net: address '" + address + "' must look like tcp:HOST:PORT or unix:/path");
}

class SocketConnection : public Connection {
 public:
  SocketConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  ~SocketConnection() override {
    Shutdown();
    ::close(fd_);
  }

  Result<size_t> ReadSome(char* buf, size_t n) override {
    while (true) {
      ssize_t got = ::recv(fd_, buf, n, 0);
      if (got >= 0) {
        return static_cast<size_t>(got);
      }
      if (errno == EINTR) {
        continue;
      }
      return Result<size_t>::Error(
          MakeTransientIoError("net: recv from " + peer_ + ": " + std::strerror(errno)));
    }
  }

  Status WriteAll(const char* data, size_t n) override {
    size_t sent = 0;
    while (sent < n) {
      // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE, not SIGPIPE.
      ssize_t got = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
      if (got < 0) {
        if (errno == EINTR) {
          continue;
        }
        return TransientNetError("send to " + peer_ + ": " + std::strerror(errno));
      }
      sent += static_cast<size_t>(got);
    }
    return Status::Ok();
  }

  void Shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

  const std::string& peer() const override { return peer_; }

 private:
  const int fd_;
  const std::string peer_;
};

class SocketListener : public Listener {
 public:
  SocketListener(int fd, std::string address, std::string unix_path)
      : fd_(fd), address_(std::move(address)), unix_path_(std::move(unix_path)) {}

  ~SocketListener() override {
    Close();
    if (!unix_path_.empty()) {
      ::unlink(unix_path_.c_str());
    }
  }

  Result<std::unique_ptr<Connection>> Accept() override {
    while (true) {
      int fd = ::accept(fd_, nullptr, nullptr);
      if (fd >= 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return Result<std::unique_ptr<Connection>>(std::make_unique<SocketConnection>(
            fd, "peer-of-" + address_));
      }
      if (errno == EINTR) {
        continue;
      }
      return Result<std::unique_ptr<Connection>>::Error(
          Errno("net: accept on " + address_));
    }
  }

  void Close() override {
    // shutdown() unblocks a pending accept; close() alone does not on Linux.
    ::shutdown(fd_, SHUT_RDWR);
    if (!closed_) {
      closed_ = true;
      ::close(fd_);
    }
  }

  const std::string& address() const override { return address_; }

 private:
  const int fd_;
  const std::string address_;
  const std::string unix_path_;
  bool closed_ = false;
};

class PosixTransport : public Transport {
 public:
  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override {
    Result<ParsedAddress> parsed = ParseAddress(address);
    if (!parsed.ok()) {
      return Result<std::unique_ptr<Listener>>::Error(parsed.error());
    }
    const ParsedAddress& a = parsed.value();
    if (a.is_unix) {
      int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        return Result<std::unique_ptr<Listener>>::Error(Errno("net: socket for " + address));
      }
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      std::strncpy(sa.sun_path, a.path.c_str(), sizeof(sa.sun_path) - 1);
      ::unlink(a.path.c_str());  // A stale socket file from a dead daemon blocks bind.
      if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0 ||
          ::listen(fd, 64) < 0) {
        Status st = Status::Error(Errno("net: bind/listen on " + address));
        ::close(fd);
        return Result<std::unique_ptr<Listener>>::Error(st.error());
      }
      return Result<std::unique_ptr<Listener>>(
          std::make_unique<SocketListener>(fd, address, a.path));
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Result<std::unique_ptr<Listener>>::Error(Errno("net: socket for " + address));
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(a.port);
    if (::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) != 1) {
      ::close(fd);
      return Result<std::unique_ptr<Listener>>::Error(
          "net: host '" + a.host + "' in '" + address + "' is not a numeric IPv4 address");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0 ||
        ::listen(fd, 64) < 0) {
      Status st = Status::Error(Errno("net: bind/listen on " + address));
      ::close(fd);
      return Result<std::unique_ptr<Listener>>::Error(st.error());
    }
    // Resolve the ephemeral port so "tcp:...:0" listeners can tell clients where they are.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      Status st = Status::Error(Errno("net: getsockname on " + address));
      ::close(fd);
      return Result<std::unique_ptr<Listener>>::Error(st.error());
    }
    std::string actual = "tcp:" + a.host + ":" + std::to_string(ntohs(bound.sin_port));
    return Result<std::unique_ptr<Listener>>(
        std::make_unique<SocketListener>(fd, actual, ""));
  }

  Result<std::unique_ptr<Connection>> Connect(const std::string& address) override {
    Result<ParsedAddress> parsed = ParseAddress(address);
    if (!parsed.ok()) {
      return Result<std::unique_ptr<Connection>>::Error(parsed.error());
    }
    const ParsedAddress& a = parsed.value();
    if (a.is_unix) {
      int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        return Result<std::unique_ptr<Connection>>::Error(
            Errno("net: socket for " + address));
      }
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      std::strncpy(sa.sun_path, a.path.c_str(), sizeof(sa.sun_path) - 1);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
        Status st = TransientNetError("connect to " + address + ": " +
                                      std::strerror(errno));
        ::close(fd);
        return Result<std::unique_ptr<Connection>>::Error(st.error());
      }
      return Result<std::unique_ptr<Connection>>(
          std::make_unique<SocketConnection>(fd, address));
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Result<std::unique_ptr<Connection>>::Error(Errno("net: socket for " + address));
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(a.port);
    if (::inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) != 1) {
      ::close(fd);
      return Result<std::unique_ptr<Connection>>::Error(
          "net: host '" + a.host + "' in '" + address + "' is not a numeric IPv4 address");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      Status st = TransientNetError("connect to " + address + ": " + std::strerror(errno));
      ::close(fd);
      return Result<std::unique_ptr<Connection>>::Error(st.error());
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Result<std::unique_ptr<Connection>>(
        std::make_unique<SocketConnection>(fd, address));
  }
};

}  // namespace

Transport* Transport::Default() {
  static PosixTransport* transport = new PosixTransport();
  return transport;
}

}  // namespace orochi
