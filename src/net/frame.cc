#include "src/net/frame.h"

#include <cstring>

#include "src/common/crc32c.h"
#include "src/common/io_env.h"
#include "src/objects/wire_format.h"
#include "src/objects/wire_primitives.h"

namespace orochi {
namespace net {

namespace {

using wire_primitives::Cursor;
using wire_primitives::MakeCursor;
using wire_primitives::PutStr;
using wire_primitives::PutU32;
using wire_primitives::PutU64;
using wire_primitives::PutU8;

template <typename T>
Result<T> Malformed(const char* what) {
  return Result<T>::Error(std::string("net: malformed ") + what + " frame");
}

}  // namespace

std::string EncodeHello(const HelloFrame& f) {
  std::string out;
  PutU32(&out, kProtocolMagic);
  PutU32(&out, f.format_version);
  PutU32(&out, f.shard_id);
  PutU64(&out, f.epoch);
  return out;
}

Result<HelloFrame> DecodeHello(const std::string& payload) {
  Cursor c = MakeCursor(payload);
  uint32_t magic = 0;
  HelloFrame f;
  if (!c.TakeU32(&magic) || !c.TakeU32(&f.format_version) || !c.TakeU32(&f.shard_id) ||
      !c.TakeU64(&f.epoch) || !c.AtEnd()) {
    return Malformed<HelloFrame>("hello");
  }
  if (magic != kProtocolMagic) {
    return Result<HelloFrame>::Error("net: hello from a non-orochi peer (bad magic)");
  }
  return f;
}

std::string EncodeHelloAck(const HelloAckFrame& f) {
  std::string out;
  PutU64(&out, f.trace_received);
  PutU64(&out, f.reports_received);
  PutU8(&out, f.sealed);
  PutU64(&out, f.max_in_flight_bytes);
  PutU64(&out, f.ack_interval_records);
  return out;
}

Result<HelloAckFrame> DecodeHelloAck(const std::string& payload) {
  Cursor c = MakeCursor(payload);
  HelloAckFrame f;
  if (!c.TakeU64(&f.trace_received) || !c.TakeU64(&f.reports_received) ||
      !c.TakeU8(&f.sealed) || !c.TakeU64(&f.max_in_flight_bytes) ||
      !c.TakeU64(&f.ack_interval_records) || !c.AtEnd()) {
    return Malformed<HelloAckFrame>("hello-ack");
  }
  return f;
}

std::string EncodeRecord(const RecordFrame& f) {
  std::string out;
  out.reserve(9 + f.payload.size());
  PutU64(&out, f.index);
  PutU8(&out, f.record_type);
  out.append(f.payload);
  return out;
}

Result<RecordFrame> DecodeRecord(const std::string& payload) {
  Cursor c = MakeCursor(payload);
  RecordFrame f;
  if (!c.TakeU64(&f.index) || !c.TakeU8(&f.record_type)) {
    return Malformed<RecordFrame>("record");
  }
  f.payload.assign(payload, c.pos, payload.size() - c.pos);
  return f;
}

std::string EncodeEndEpoch(const EndEpochFrame& f) {
  std::string out;
  PutU64(&out, f.trace_records);
  PutU64(&out, f.reports_records);
  return out;
}

Result<EndEpochFrame> DecodeEndEpoch(const std::string& payload) {
  Cursor c = MakeCursor(payload);
  EndEpochFrame f;
  if (!c.TakeU64(&f.trace_records) || !c.TakeU64(&f.reports_records) || !c.AtEnd()) {
    return Malformed<EndEpochFrame>("end-epoch");
  }
  return f;
}

std::string EncodeAck(const AckFrame& f) {
  std::string out;
  PutU64(&out, f.trace_received);
  PutU64(&out, f.reports_received);
  return out;
}

Result<AckFrame> DecodeAck(const std::string& payload) {
  Cursor c = MakeCursor(payload);
  AckFrame f;
  if (!c.TakeU64(&f.trace_received) || !c.TakeU64(&f.reports_received) || !c.AtEnd()) {
    return Malformed<AckFrame>("ack");
  }
  return f;
}

std::string EncodeEpochSealed(const EpochSealedFrame& f) {
  std::string out;
  PutU64(&out, f.epoch);
  return out;
}

Result<EpochSealedFrame> DecodeEpochSealed(const std::string& payload) {
  Cursor c = MakeCursor(payload);
  EpochSealedFrame f;
  if (!c.TakeU64(&f.epoch) || !c.AtEnd()) {
    return Malformed<EpochSealedFrame>("epoch-sealed");
  }
  return f;
}

std::string EncodeError(const ErrorFrame& f) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(f.code));
  PutStr(&out, f.message);
  return out;
}

Result<ErrorFrame> DecodeError(const std::string& payload) {
  Cursor c = MakeCursor(payload);
  uint8_t code = 0;
  ErrorFrame f;
  if (!c.TakeU8(&code) || !c.TakeStr(&f.message) || !c.AtEnd() || code < 1 || code > 3) {
    return Malformed<ErrorFrame>("error");
  }
  f.code = static_cast<ErrorCode>(code);
  return f;
}

Result<bool> FrameReader::Next(uint8_t* type, std::string* payload) {
  // Read the fixed 13-byte frame first. A clean peer close is only legal here, before
  // any byte of a frame has arrived.
  char frame[wire::kRecordFrameBytesV2];
  size_t have = 0;
  while (have < sizeof(frame)) {
    Result<size_t> got = conn_->ReadSome(frame + have, sizeof(frame) - have);
    if (!got.ok()) {
      return Result<bool>::Error(got.error());
    }
    if (got.value() == 0) {
      if (have == 0) {
        return false;
      }
      return Result<bool>::Error(MakeTransientIoError(
          "net: connection to " + conn_->peer() + " closed mid-frame (short frame)"));
    }
    have += got.value();
  }
  uint64_t len = 0;
  uint32_t crc = 0;
  wire::ParseRecordFrameV2(frame, sizeof(frame), type, &len, &crc);
  if (len > kMaxFramePayloadBytes) {
    return Result<bool>::Error("wire: oversized frame (" + std::to_string(len) +
                               " bytes) from " + conn_->peer());
  }
  payload->resize(len);
  have = 0;
  while (have < len) {
    Result<size_t> got = conn_->ReadSome(&(*payload)[have], len - have);
    if (!got.ok()) {
      return Result<bool>::Error(got.error());
    }
    if (got.value() == 0) {
      return Result<bool>::Error(MakeTransientIoError(
          "net: connection to " + conn_->peer() + " closed mid-frame (short frame)"));
    }
    have += got.value();
  }
  if (Crc32c(*payload) != crc) {
    // Localized in-flight corruption: the frame is dropped here, never spooled; the
    // sender re-sends it after the resume handshake.
    return Result<bool>::Error("wire: frame crc mismatch (type " + std::to_string(*type) +
                               ", " + std::to_string(len) + " bytes) from " +
                               conn_->peer());
  }
  frames_read_++;
  bytes_read_ += sizeof(frame) + len;
  return true;
}

Status FrameWriter::Send(uint8_t type, const std::string& payload) {
  scratch_.clear();
  wire::AppendRecordFrame(&scratch_, type, payload);
  if (Status st = conn_->WriteAll(scratch_); !st.ok()) {
    return st;
  }
  frames_sent_++;
  bytes_sent_ += scratch_.size();
  return Status::Ok();
}

}  // namespace net
}  // namespace orochi
