// Deterministic fault injection for the socket path, mirroring FaultInjectingEnv
// (src/common/io_env.h): a schedule fully determined by (seed, operation index) decides
// which reads disconnect, which writes are torn short, and which outgoing frames are
// corrupted in flight — so the live-service fault-taxonomy claims (never crash, never
// falsely accept, disconnects classify as retryable I/O) are provable sweeps, not hopes.
#ifndef SRC_NET_FAULT_TRANSPORT_H_
#define SRC_NET_FAULT_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/net/transport.h"

namespace orochi {

struct NetFaultOptions {
  uint64_t seed = 1;
  // Per-operation fault probabilities (at most one fault fires per operation).
  double p_disconnect_read = 0;   // A read finds the connection dead (peer reset).
  double p_disconnect_write = 0;  // A write finds the connection dead.
  double p_short_write = 0;       // A strict prefix lands on the wire, then disconnect.
  double p_corrupt_write = 0;     // One byte of the written buffer flips in flight.
  // Scripted one-shot kill: this many write operations (across all faulted connections)
  // complete, then the next write disconnects — modeling a collector process killed
  // mid-epoch for reconnect-with-resume tests.
  static constexpr uint64_t kNever = UINT64_MAX;
  uint64_t disconnect_after_writes = kNever;
};

// Wraps a base transport; connections obtained through Connect() replay the fault
// schedule. Listen() passes through untouched — the service side stays faithful, the
// injected faults model the collector's network path. An injected disconnect also shuts
// the underlying socket down, so the un-faulted peer observes a real disconnect.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(Transport* base, NetFaultOptions options)
      : base_(ResolveTransport(base)), options_(options) {
    remaining_writes_.store(options.disconnect_after_writes == NetFaultOptions::kNever
                                ? INT64_MAX
                                : static_cast<int64_t>(options.disconnect_after_writes));
  }

  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override {
    return base_->Listen(address);
  }
  Result<std::unique_ptr<Connection>> Connect(const std::string& address) override;

  uint64_t faults_injected() const { return faults_injected_.load(); }
  uint64_t disconnects() const { return disconnects_.load(); }
  uint64_t corruptions() const { return corruptions_.load(); }

  // Schedule internals, public for the wrapped connections this transport hands out.
  const NetFaultOptions& options() const { return options_; }
  // Draws one uniform [0,1) double for the next operation in the schedule.
  double Draw();
  // Consumes one scripted-kill slot. True when this write is the kill point.
  bool TakeKillSlot();
  void CountDisconnect() {
    faults_injected_.fetch_add(1);
    disconnects_.fetch_add(1);
  }
  void CountCorruption() {
    faults_injected_.fetch_add(1);
    corruptions_.fetch_add(1);
  }

 private:
  Transport* base_;
  NetFaultOptions options_;
  std::atomic<uint64_t> op_index_{0};
  std::atomic<int64_t> remaining_writes_{INT64_MAX};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> disconnects_{0};
  std::atomic<uint64_t> corruptions_{0};
};

}  // namespace orochi

#endif  // SRC_NET_FAULT_TRANSPORT_H_
