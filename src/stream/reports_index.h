// The reports-side mirror of src/stream/trace_index.h: stream a reports spill file
// record-by-record and retain only a *skeleton* of the epoch's reports — the object
// table, groups, op counts, and nondet records in full (they are small and drive
// planning/graph construction), and for every op-log entry its rid, opnum, and type plus
// the entry's byte location in the file — never the contents. Op-log contents, the bulk
// of a log-heavy epoch's reports, stay on disk until either a versioned-store build scans
// them forward in bounded segments or a re-execution chunk pages in exactly the entries
// its CheckOps compare against (src/stream/chunk_loader.h), all charged to the same
// ChunkBudget as trace payloads.
//
// The skeleton is a real Reports, which is the trick that lets the streaming path drive
// the unmodified audit engine: ProcessOpReports (graph + OpMap) reads only rids and
// opnums, planning reads only groups, and CheckOp's contents comparisons see entries the
// chunk gate has paged in — so an AuditContext prepared over the skeleton behaves
// bit-identically to one prepared over fully materialized reports.
//
// Multiple files append in shard-merge order exactly as AppendReports would merge them
// (object-id remap, group-tag merge, rid-disjointness), with each appended file's entry
// locations remapped alongside.
#ifndef SRC_STREAM_REPORTS_INDEX_H_
#define SRC_STREAM_REPORTS_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/io_env.h"
#include "src/common/result.h"
#include "src/core/audit_context.h"
#include "src/objects/reports.h"
#include "src/objects/wire_format.h"
#include "src/stream/chunk_loader.h"

namespace orochi {

// Where one op-log entry's wire frame (rid + opnum + type + length-prefixed contents)
// lives on disk. `bytes` is the whole frame — the cost a load charges to the budget.
struct OpLogEntryLoc {
  uint32_t file = 0;    // Index into StreamReportsSet::file_path().
  uint64_t offset = 0;  // File offset of the entry frame.
  uint64_t bytes = 0;   // Frame length.
  // CRC32C of the entry frame as validated during pass 1, so point loads prove the
  // bytes they re-read are the bytes the streaming pass accepted.
  uint32_t crc = 0;
};

class StreamReportsSet {
 public:
  // Streams `path` (decoding every record through the same validator the in-memory
  // reader uses, then shedding op-log contents) and merges it onto the skeleton via
  // AppendReports semantics. At most one record's payload is transiently resident during
  // the pass — and since v3 writers cap op-log records at wire::kMaxOpLogSegmentBytes,
  // that transient is bounded by one *segment* even for a hot object (v1/v2 files still
  // pay one monolithic record). v3 segment records stitch back into the same per-object
  // entry index monolithic records produce, so everything downstream (loaders, scanners,
  // planning) is segmentation-blind. Merge-level errors (rid overlap with an earlier
  // file) are prefixed with `path`; decode errors already name the file. Reads go through
  // `env` (nullptr = the production posix environment).
  Status AppendFile(const std::string& path, Env* env = nullptr);

  // Folds `other` onto this set with AppendReports merge semantics (object-id remap,
  // group-tag merge, rid-disjointness), remapping its entry locations alongside — the
  // sequential fold step of a parallel per-shard pass 1. `label` prefixes merge-level
  // errors exactly as AppendFile's path does.
  Status Absorb(StreamReportsSet&& other, const std::string& label);

  const Reports& skeleton() const { return skeleton_; }
  // The loader installs contents into (and evicts them from) skeleton log entries in
  // place; each entry is only ever touched by the one thread running its owner's work.
  Reports* mutable_skeleton() { return &skeleton_; }

  // Entry location for `object`'s log entry at 1-based `seqnum`.
  const OpLogEntryLoc& loc(size_t object, uint64_t seqnum) const {
    return locs_[object][static_cast<size_t>(seqnum - 1)];
  }
  uint64_t log_size(size_t object) const { return locs_[object].size(); }
  size_t num_objects() const { return locs_.size(); }

  size_t num_files() const { return files_.size(); }
  const std::string& file_path(uint32_t file) const { return files_[file]; }

  // Total op-log frame bytes across all objects — what a fully materialized epoch would
  // keep resident on the reports side; the budget bounds the streamed audit below this.
  uint64_t total_log_payload_bytes() const { return total_log_payload_bytes_; }

  // Largest single record payload transiently materialized while indexing — the pass-1
  // residency the chunk budget cannot see (records are decoded before any loader runs).
  // With a v3 writer this is bounded by ~wire::kMaxOpLogSegmentBytes + one entry; with a
  // v1/v2 file it is the largest monolithic op-log record. Also exported as the
  // orochi_pass1_transient_peak_bytes gauge.
  uint64_t pass1_transient_peak_bytes() const { return pass1_transient_peak_bytes_; }

 private:
  Reports skeleton_;
  std::vector<std::vector<OpLogEntryLoc>> locs_;  // Parallel to skeleton_.op_logs.
  std::vector<std::string> files_;
  uint64_t total_log_payload_bytes_ = 0;
  uint64_t pass1_transient_peak_bytes_ = 0;
};

// OpLogScanner over spilled logs: Prepare()'s versioned-store builds (register indexes,
// versioned KV, the db redo pass) consume each log as one forward scan, so this scanner
// pages byte-capped segments of contiguous entries through the loader under the budget —
// the same residency ceiling re-execution honors — and hands the builds fully
// materialized entries one at a time.
class SegmentedOpLogScanner : public OpLogScanner {
 public:
  // Forward scans page runs of up to this many frame bytes at once (a single entry
  // larger than this still forms its own one-entry segment, admitted via the budget's
  // oversized-chunk path). Deliberately the same cap the v3 writer applies to on-disk
  // op-log segments, so scan paging and pass-1 transients share one ceiling.
  static constexpr uint64_t kSegmentBytes = wire::kMaxOpLogSegmentBytes;

  SegmentedOpLogScanner(StreamReportsSet* set, ReportsChunkLoader* loader,
                        ChunkBudget* budget)
      : set_(set), loader_(loader), budget_(budget) {}

  Status Scan(size_t object,
              const std::function<Status(const OpRecord&, uint64_t)>& fn) override;
  bool io_failed() const override { return io_failed_; }

 private:
  StreamReportsSet* set_;
  ReportsChunkLoader* loader_;
  ChunkBudget* budget_;
  bool io_failed_ = false;
};

}  // namespace orochi

#endif  // SRC_STREAM_REPORTS_INDEX_H_
