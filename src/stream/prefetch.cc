#include "src/stream/prefetch.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace orochi {

namespace {

struct PrefetchMetrics {
  obs::Counter* issued;
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* revoked;
  obs::Counter* bytes;
  obs::Histogram* wait_seconds;

  static PrefetchMetrics* Get() {
    static PrefetchMetrics* const m = [] {
      auto* registry = obs::MetricsRegistry::Default();
      auto* out = new PrefetchMetrics();
      out->issued = registry->GetCounter("orochi_prefetch_issued_total",
                                         "chunks the prefetch I/O thread fetched ahead");
      out->hits = registry->GetCounter(
          "orochi_prefetch_hits_total",
          "gate acquires served from an already-prefetched chunk");
      out->misses = registry->GetCounter(
          "orochi_prefetch_misses_total",
          "gate acquires that loaded synchronously (walk not there, ceded, or revoked)");
      out->revoked = registry->GetCounter(
          "orochi_prefetch_revoked_total",
          "prefetched chunks dropped to refund budget to a starved worker");
      out->bytes = registry->GetCounter("orochi_prefetch_bytes_total",
                                        "payload bytes fetched ahead of the workers");
      out->wait_seconds = registry->GetHistogram(
          "orochi_prefetch_wait_seconds",
          "time a worker waited on its own chunk's in-flight prefetch read",
          {0.0001, 0.001, 0.01, 0.1, 1, 10});
      return out;
    }();
    return m;
  }
};

}  // namespace

Result<size_t> ResolvePrefetchDepth(const AuditOptions& options) {
  if (options.prefetch_depth != AuditOptions::kPrefetchDepthAuto) {
    return options.prefetch_depth;
  }
  if (const char* env = std::getenv("OROCHI_PREFETCH_DEPTH")) {
    Result<uint64_t> v = ParseUint64(env);
    if (!v.ok()) {
      // A malformed depth must not silently pick some read-ahead: it is a config error.
      return Result<size_t>::Error("config: OROCHI_PREFETCH_DEPTH='" + std::string(env) +
                                   "' is not a valid read-ahead depth (" + v.error() +
                                   ")");
    }
    return static_cast<size_t>(v.value());  // 0 keeps its documented meaning: off.
  }
  return kDefaultPrefetchDepth;
}

ChunkPrefetcher::ChunkPrefetcher(PrefetchableLoader* loader, ChunkBudget* budget,
                                 std::vector<const AuditTask*> order, size_t depth,
                                 AuditTaskJournal* journal)
    : loader_(loader),
      budget_(budget),
      order_(std::move(order)),
      depth_(depth),
      journal_(journal) {
  slots_.resize(order_.size());
  for (size_t i = 0; i < order_.size(); i++) {
    slots_[i].task = order_[i];
    by_order_[order_[i]->order] = i;
  }
}

ChunkPrefetcher::~ChunkPrefetcher() { Stop(); }

void ChunkPrefetcher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return;
  }
  started_ = true;
  thread_ = std::thread(&ChunkPrefetcher::ThreadMain, this);
}

void ChunkPrefetcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;  // Already stopped and drained.
    }
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  // The walk has joined and the workers are done (Stop runs after ExecuteAuditPlan), so
  // anything still kReady was fetched but never claimed — drop it and refund its budget
  // before pass 3 (or a bare sync path) reuses the byte headroom.
  std::lock_guard<std::mutex> lock(mu_);
  while (!ready_.empty()) {
    DropReadySlotLocked();
  }
}

ChunkPrefetcher::TakeResult ChunkPrefetcher::Take(size_t task_order, Status* status) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = by_order_.find(task_order);
  if (it == by_order_.end()) {
    return TakeResult::kNotPrefetched;  // Serial tasks are never in the walk.
  }
  Slot& slot = slots_[it->second];
  if (slot.state == SlotState::kPending) {
    // The worker beat the walk here; cede the slot so the walk never fetches a chunk
    // whose skeleton entries a worker already owns.
    slot.state = SlotState::kCeded;
    BumpProgressLocked();
    cv_.notify_all();
    stats_.misses++;
    PrefetchMetrics::Get()->misses->Inc();
    return TakeResult::kNotPrefetched;
  }
  if (slot.state == SlotState::kFetching) {
    const auto wait_start = std::chrono::steady_clock::now();
    cv_.wait(lock, [&] { return slot.state != SlotState::kFetching; });
    PrefetchMetrics::Get()->wait_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_start)
            .count());
  }
  switch (slot.state) {
    case SlotState::kReady: {
      slot.state = SlotState::kTaken;
      ready_.erase(std::find(ready_.begin(), ready_.end(), it->second));
      outstanding_--;
      stats_.hits++;
      PrefetchMetrics::Get()->hits->Inc();
      BumpProgressLocked();
      cv_.notify_all();
      return TakeResult::kAdopted;
    }
    case SlotState::kFailed:
      *status = slot.status;
      return TakeResult::kFailed;
    default:
      // kRevoked (dropped for budget) — reload synchronously like a never-fetched chunk.
      stats_.misses++;
      PrefetchMetrics::Get()->misses->Inc();
      return TakeResult::kNotPrefetched;
  }
}

void ChunkPrefetcher::AcquireBudgetRevoking(uint64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Capture the generation BEFORE TryAcquire: any release that lands after the capture
    // bumps it, so the wait below can never miss the wakeup for the headroom it needs.
    const uint64_t gen = progress_gen_;
    if (budget_->TryAcquire(bytes)) {
      return;
    }
    if (RevokeOneLocked(lock)) {
      continue;  // Refunded some read-ahead; retry immediately.
    }
    // Every remaining holder drains on its own: executing workers release at their gate
    // Release (NotifyProgress), and the at-most-one mid-fetch chunk completes into a
    // revocable kReady (the completion bumps the generation too).
    cv_.wait(lock, [&] { return progress_gen_ != gen; });
  }
}

void ChunkPrefetcher::NotifyProgress() {
  std::lock_guard<std::mutex> lock(mu_);
  BumpProgressLocked();
  cv_.notify_all();
}

PrefetchStats ChunkPrefetcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ChunkPrefetcher::DropReadySlotLocked() {
  // Farthest-ahead first: the chunk whose worker is longest away loses its read-ahead.
  const size_t idx = ready_.back();
  ready_.pop_back();
  Slot& slot = slots_[idx];
  // Evict while holding mu_: the slot's worker cannot observe kRevoked (and start a
  // synchronous reload of the same skeleton entries) until the eviction has finished.
  loader_->DropChunk(*slot.task);
  budget_->Release(slot.bytes);
  slot.state = SlotState::kRevoked;
  outstanding_--;
  BumpProgressLocked();
  cv_.notify_all();
}

bool ChunkPrefetcher::RevokeOneLocked(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  if (ready_.empty()) {
    return false;
  }
  DropReadySlotLocked();
  stats_.revoked++;
  PrefetchMetrics::Get()->revoked->Inc();
  return true;
}

void ChunkPrefetcher::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (size_t i = 0; i < slots_.size() && !stop_; i++) {
    Slot& slot = slots_[i];
    if (slot.state != SlotState::kPending) {
      continue;  // Ceded: its worker got here first.
    }
    if (journal_ != nullptr && journal_->Lookup(slot.task->order) != nullptr) {
      slot.state = SlotState::kCeded;  // Replays from the checkpoint; never hits the gate.
      continue;
    }
    // Depth window: at most depth_ chunks in {kFetching, kReady} at once.
    cv_.wait(lock, [&] {
      return stop_ || outstanding_ < depth_ || slot.state != SlotState::kPending;
    });
    if (stop_ || slot.state != SlotState::kPending) {
      continue;
    }
    const AuditTask* task = slot.task;
    lock.unlock();
    const uint64_t bytes = loader_->ChunkBytes(*task);
    lock.lock();
    // Budget admission: TryAcquire and wait on the progress generation — never sleep
    // inside the budget, whose progress guarantee our parked kReady bytes don't honor.
    bool admitted = false;
    while (!stop_ && slot.state == SlotState::kPending) {
      const uint64_t gen = progress_gen_;
      if (budget_->TryAcquire(bytes)) {
        admitted = true;
        break;
      }
      cv_.wait(lock, [&] {
        return stop_ || progress_gen_ != gen || slot.state != SlotState::kPending;
      });
    }
    if (!admitted) {
      continue;  // Stopped, or the worker ceded the slot while we waited for headroom.
    }
    slot.state = SlotState::kFetching;
    slot.bytes = bytes;
    outstanding_++;
    lock.unlock();
    Status st = loader_->FetchChunk(*task);
    lock.lock();
    if (st.ok()) {
      slot.state = SlotState::kReady;
      ready_.push_back(i);  // i ascends, so ready_ stays sorted.
      stats_.issued++;
      stats_.bytes += bytes;
      PrefetchMetrics::Get()->issued->Inc();
      PrefetchMetrics::Get()->bytes->Inc(bytes);
    } else {
      // The failure surfaces at this task's gate Acquire via Take — same task order as a
      // synchronous load's failure, so the smallest-order-wins rule sees no difference.
      slot.state = SlotState::kFailed;
      slot.status = st;
      budget_->Release(bytes);
      outstanding_--;
    }
    BumpProgressLocked();
    cv_.notify_all();
  }
}

}  // namespace orochi
