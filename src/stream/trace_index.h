// Pass 1 of the out-of-core audit: stream spill files record-by-record and retain only a
// *skeleton* of the epoch's trace — every event's kind, rid, and (for requests) script
// name, plus each record's byte location in its file — never the payloads. Request
// parameters and response bodies, the bulk of a trace, stay on disk until pass 2 pages a
// chunk's worth in under the memory budget (src/stream/chunk_loader.h).
//
// The skeleton is a real Trace, which is the trick that lets the streaming path drive the
// unmodified audit engine: CheckTraceBalanced, ProcessOpReports, and group planning only
// read kinds, rids, and scripts, so an AuditContext prepared over the skeleton is
// bit-identical in behavior to one prepared over the fully materialized trace.
#ifndef SRC_STREAM_TRACE_INDEX_H_
#define SRC_STREAM_TRACE_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/io_env.h"
#include "src/common/result.h"
#include "src/objects/trace.h"

namespace orochi {

// Where one trace event's payload lives on disk.
struct TraceEventLoc {
  uint32_t file = 0;       // Index into StreamTraceSet::file_path().
  uint8_t record_type = 0; // wire::kTraceRecRequest / kTraceRecResponse.
  uint64_t offset = 0;     // File offset of the record payload (past the record frame).
  uint64_t bytes = 0;      // Payload length — the cost a load charges to the budget.
  // CRC32C of the payload as validated during pass 1 (read from a v2 file's frame,
  // computed for v1), so pass-2/3 point reads prove the file has not changed since.
  uint32_t crc = 0;
};

class StreamTraceSet {
 public:
  // Streams `path` (decoding each record to validate it exactly as the in-memory reader
  // would, then dropping the payload) and appends its events to the skeleton. Multiple
  // files concatenate in call order — the shard merge order. Returns the file's stamped
  // shard id (0 when unsharded). Reads go through `env` (nullptr = the production
  // posix environment), so transient faults retry and injected-fault tests reach pass 1.
  Result<uint32_t> AppendFile(const std::string& path, Env* env = nullptr);

  // Steals `other`'s events/locs/files onto the end of this set (file indexes and the
  // request index shifted), preserving AppendFile-call-order semantics — the sequential
  // fold step of a parallel per-shard pass 1.
  void Absorb(StreamTraceSet&& other);

  const Trace& skeleton() const { return skeleton_; }
  // The loader installs payloads into (and evicts them from) skeleton events in place;
  // each event is only ever touched by the one worker running its group's chunk.
  Trace* mutable_skeleton() { return &skeleton_; }

  const TraceEventLoc& loc(size_t event_index) const { return locs_[event_index]; }
  size_t num_events() const { return locs_.size(); }
  size_t num_files() const { return files_.size(); }
  const std::string& file_path(uint32_t file) const { return files_[file]; }

  // Event index of rid's request event; SIZE_MAX when the rid is untraced. (On a
  // malformed trace with duplicate rids the first occurrence wins; the balanced-trace
  // check rejects such an epoch before any payload is ever loaded.)
  size_t RequestIndex(RequestId rid) const;

  // Total payload bytes across all request events — what a fully materialized epoch
  // would keep resident; the budget bounds the streamed audit far below this.
  uint64_t total_request_payload_bytes() const { return total_request_payload_bytes_; }

 private:
  Trace skeleton_;
  std::vector<TraceEventLoc> locs_;
  std::vector<std::string> files_;
  std::unordered_map<RequestId, size_t> request_index_;
  uint64_t total_request_payload_bytes_ = 0;
};

}  // namespace orochi

#endif  // SRC_STREAM_TRACE_INDEX_H_
