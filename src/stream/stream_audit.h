// Instrumentation surface of the out-of-core audit (AuditSession::FeedEpochFilesStreamed
// and FeedShardedEpoch): tests swap in a counting TraceChunkLoader to assert the memory
// budget actually held, and benches read the ChunkBudget's high-water mark to report peak
// resident trace bytes. Production callers pass nothing and get a FileTraceChunkLoader
// plus a budget resolved from AuditOptions::max_resident_bytes / OROCHI_AUDIT_BUDGET.
#ifndef SRC_STREAM_STREAM_AUDIT_H_
#define SRC_STREAM_STREAM_AUDIT_H_

#include "src/core/audit_session.h"
#include "src/stream/chunk_loader.h"
#include "src/stream/prefetch.h"
#include "src/stream/reports_index.h"
#include "src/stream/shard_merge.h"
#include "src/stream/trace_index.h"

namespace orochi {

struct StreamAuditHooks {
  // Overrides the trace payload loader. The hook's Load/Evict see exactly the point reads
  // the audit performs, bracketed by OnChunkResident/OnChunkEvicted per chunk. Not owned.
  TraceChunkLoader* loader = nullptr;
  // Overrides the op-log contents loader (reports side), with the same residency
  // brackets. A counting pair sharing one tally across both loaders observes the total
  // resident trace+reports bytes the single budget admitted. Not owned.
  ReportsChunkLoader* reports_loader = nullptr;
  // Overrides the budget (its max wins over the options/env resolution). One budget
  // governs trace payloads AND op-log contents. Not owned; lets a bench read peak_bytes()
  // after the audit returns.
  ChunkBudget* budget = nullptr;
  // When non-null, receives the pass-2 prefetch pipeline's final counters after the
  // audit returns (all zero when read-ahead resolved to depth 0 or the plan had no pool
  // tasks). Not owned.
  PrefetchStats* prefetch_stats = nullptr;
};

}  // namespace orochi

#endif  // SRC_STREAM_STREAM_AUDIT_H_
