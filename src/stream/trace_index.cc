#include "src/stream/trace_index.h"

#include <utility>

#include "src/objects/wire_format.h"

namespace orochi {

Result<uint32_t> StreamTraceSet::AppendFile(const std::string& path, Env* env) {
  TraceReader reader;
  if (Status st = reader.Open(path, env); !st.ok()) {
    return Result<uint32_t>::Error(st.error());
  }
  const uint32_t file = static_cast<uint32_t>(files_.size());
  files_.push_back(path);
  while (true) {
    TraceEvent event;
    Result<bool> more = reader.Next(&event);
    if (!more.ok()) {
      return Result<uint32_t>::Error(more.error());
    }
    if (!more.value()) {
      break;
    }
    TraceEventLoc loc;
    loc.file = file;
    loc.record_type = reader.last_record_type();
    loc.offset = reader.last_payload_offset();
    loc.bytes = reader.last_payload_bytes();
    loc.crc = reader.last_payload_crc();
    if (event.kind == TraceEvent::Kind::kRequest) {
      request_index_.emplace(event.rid, locs_.size());
      total_request_payload_bytes_ += loc.bytes;
      // Keep the script (planning groups by it); shed the payload.
      event.params = RequestParams{};
    } else {
      event.body.clear();
      event.body.shrink_to_fit();
    }
    locs_.push_back(loc);
    skeleton_.events.push_back(std::move(event));
  }
  return reader.shard_id();
}

void StreamTraceSet::Absorb(StreamTraceSet&& other) {
  const uint32_t file_base = static_cast<uint32_t>(files_.size());
  const size_t event_base = locs_.size();
  for (std::string& path : other.files_) {
    files_.push_back(std::move(path));
  }
  locs_.reserve(locs_.size() + other.locs_.size());
  for (TraceEventLoc loc : other.locs_) {
    loc.file += file_base;
    locs_.push_back(loc);
  }
  skeleton_.events.reserve(skeleton_.events.size() + other.skeleton_.events.size());
  for (TraceEvent& event : other.skeleton_.events) {
    skeleton_.events.push_back(std::move(event));
  }
  for (const auto& [rid, index] : other.request_index_) {
    // First occurrence wins across the whole merged set, same as sequential AppendFile.
    request_index_.emplace(rid, event_base + index);
  }
  total_request_payload_bytes_ += other.total_request_payload_bytes_;
  other = StreamTraceSet();
}

size_t StreamTraceSet::RequestIndex(RequestId rid) const {
  auto it = request_index_.find(rid);
  return it == request_index_.end() ? SIZE_MAX : it->second;
}

}  // namespace orochi
