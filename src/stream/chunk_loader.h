// The memory governor of the out-of-core audit: a byte budget that workers block on
// before paging a chunk's trace payloads in, and the loader that performs the point reads
// against the spill files indexed by pass 1.
//
// Budget discipline: a worker may hold payload bytes only between its chunk's Acquire and
// Release, so resident bytes never exceed max(budget, largest single chunk) — the
// oversized-chunk exception admits a chunk bigger than the whole budget only while
// nothing else is resident, which is what lets an epoch with one huge group still audit
// in bounded memory (one group at a time) instead of deadlocking.
#ifndef SRC_STREAM_CHUNK_LOADER_H_
#define SRC_STREAM_CHUNK_LOADER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/io_env.h"
#include "src/common/result.h"
#include "src/core/audit_context.h"
#include "src/stream/trace_index.h"

namespace orochi {

class StreamReportsSet;  // Spilled per-object op-log index (src/stream/reports_index.h).
struct AuditTask;        // One pass-2 chunk of the audit plan (src/core/audit_plan.h).

// Budget (bytes) an AuditOptions resolves to for streamed audits: max_resident_bytes when
// nonzero, else the OROCHI_AUDIT_BUDGET environment variable, else 0 (unlimited). A set
// but malformed environment value (non-numeric, signed, trailing junk, overflow) is a
// hard configuration error, never a silent fallback to unlimited.
Result<uint64_t> ResolveAuditBudget(const AuditOptions& options);

class ChunkBudget {
 public:
  explicit ChunkBudget(uint64_t max_bytes) : max_(max_bytes) {}

  // Blocks until `bytes` fits: used + bytes <= max, or nothing is resident (the oversized
  // -chunk exception; also the unlimited case when max == 0 never blocks). Progress is
  // guaranteed because holders never block on the budget between Acquire and Release.
  void Acquire(uint64_t bytes);
  // Non-blocking Acquire under the same admission rule (oversized solo-admission
  // included). The prefetch pipeline holds bytes that CAN park between acquire and
  // release (a ready chunk waiting for its worker), so it must never sleep inside the
  // budget — it TryAcquires and waits on its own progress signal instead
  // (src/stream/prefetch.h).
  bool TryAcquire(uint64_t bytes);
  void Release(uint64_t bytes);

  uint64_t max_bytes() const { return max_; }
  // High-water mark of resident bytes, for benches and budget assertions in tests.
  uint64_t peak_bytes() const;
  // Largest single Acquire seen: the enforceable residency ceiling is
  // max(max_bytes, largest_acquire_bytes), since one admission bigger than the whole
  // budget is allowed while nothing else is resident (the oversized-chunk path).
  uint64_t largest_acquire_bytes() const;

 private:
  const uint64_t max_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t used_ = 0;
  uint64_t peak_ = 0;
  uint64_t largest_acquire_ = 0;
};

// Adjacent point reads (one chunk's trace payloads, one run's op-log entries) coalesce
// into single preads when the file gap between them is at most this many bytes — sized
// to bridge v3 op-log segment framing (a 13-byte record frame + 24-byte segment
// preamble separates entries that v1/v2 wrote contiguously) with margin, while never
// dragging in a meaningful stretch of unrelated bytes. Gap bytes are read and discarded;
// only payload bytes are ever charged to the budget.
inline constexpr uint64_t kCoalesceGapBytes = 256;

// Pages individual trace-event payloads in and out of the pass-1 skeleton. Load/Evict
// calls for one event always come from the thread running that event's chunk, and chunks
// partition the rids, so implementations need no per-event locking — only whatever guards
// their own file-handle state. Virtual so tests can interpose a counting loader that
// asserts the budget held.
class TraceChunkLoader {
 public:
  virtual ~TraceChunkLoader() = default;

  // Reads event `index`'s payload from its spill file and installs it into the skeleton
  // event (request params / response body).
  virtual Status Load(const StreamTraceSet& set, size_t index, TraceEvent* event) = 0;
  // Loads a whole chunk's events in one call. On error, everything the call had already
  // installed is evicted again before it returns (the skeleton is left clean for these
  // indexes). The default forwards to Load one event at a time; FileTraceChunkLoader
  // overrides it to sort the events by file offset and merge adjacent payload reads
  // (gap ≤ kCoalesceGapBytes) into single preads.
  virtual Status LoadBatch(const StreamTraceSet& set, const std::vector<size_t>& indexes,
                           Trace* skeleton);
  // Drops the payload again, returning the event to skeleton form.
  virtual void Evict(const StreamTraceSet& set, size_t index, TraceEvent* event) = 0;

  // Chunk-residency brackets: OnChunkResident fires after a chunk's bytes are admitted by
  // the budget (before its Loads), OnChunkEvicted after its Evicts and budget release.
  // Default no-ops; counting loaders use them to track concurrent residency.
  virtual void OnChunkResident(uint64_t bytes) { (void)bytes; }
  virtual void OnChunkEvicted(uint64_t bytes) { (void)bytes; }
};

// The real loader: positional reads against lazily opened files, so concurrent workers
// never share a file position. All reads go through the Env (transient faults retry with
// bounded backoff), and every re-read is checked against the CRC32C pass 1 recorded
// before it is decoded — a spill file mutated mid-audit surfaces as an I/O error, never
// as silent misattribution.
class FileTraceChunkLoader : public TraceChunkLoader {
 public:
  // `set` only pre-sizes the file table; Load follows the set it is handed (the audit's
  // own merged set when this loader rides in via StreamAuditHooks), growing the table as
  // needed. `env` nullptr = the production posix environment.
  explicit FileTraceChunkLoader(const StreamTraceSet* set, Env* env = nullptr);
  ~FileTraceChunkLoader() override;
  FileTraceChunkLoader(const FileTraceChunkLoader&) = delete;
  FileTraceChunkLoader& operator=(const FileTraceChunkLoader&) = delete;

  Status Load(const StreamTraceSet& set, size_t index, TraceEvent* event) override;
  // One pread per file-adjacent span of the chunk's payloads (gap ≤ kCoalesceGapBytes),
  // instead of one per event; each payload still verifies against its pass-1 CRC before
  // it is decoded and installed.
  Status LoadBatch(const StreamTraceSet& set, const std::vector<size_t>& indexes,
                   Trace* skeleton) override;
  void Evict(const StreamTraceSet& set, size_t index, TraceEvent* event) override;

 private:
  Result<std::shared_ptr<ReadableFile>> OpenFile(const StreamTraceSet& set, uint32_t file);
  // CRC-checks, decodes, and installs one event's payload bytes.
  Status InstallPayload(const StreamTraceSet& set, size_t index, TraceEvent* event,
                        const char* payload, size_t n);

  Env* const env_;
  std::mutex mu_;  // Guards files_ (lazy opens); reads themselves are lock-free.
  std::vector<std::shared_ptr<ReadableFile>> files_;  // null = not yet opened.
};

// Pages runs of op-log entry *contents* in and out of a reports skeleton
// (StreamReportsSet, the reports-side mirror of the trace skeleton). A run
// [first_seqnum, first_seqnum + count) of one object's log is the loader's unit: the
// chunk gate loads the single entries a chunk's CheckOps will compare against, and the
// versioned-store builds load forward-scan segments. Entries of one object are only ever
// touched by one thread at a time (chunks partition rids, and each log entry is claimed
// by exactly one rid; duplicate-claim reports are rejected before any load), so
// implementations need no per-entry locking. Virtual so tests can interpose a counting
// loader that asserts the shared trace+reports budget held.
class ReportsChunkLoader {
 public:
  virtual ~ReportsChunkLoader() = default;

  // Reads the entries' wire frames from their spill file and installs each entry's
  // contents into the skeleton log, verifying rid/opnum/type still match the skeleton (a
  // spill file mutated mid-audit surfaces as an I/O error, never as misattribution).
  virtual Status Load(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
                      uint64_t count) = 0;
  // Drops the contents again, returning the entries to skeleton form.
  virtual void Evict(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
                     uint64_t count) = 0;

  // Residency brackets, mirroring TraceChunkLoader's: fired around each budget
  // acquisition that covers reports bytes, with the byte count charged.
  virtual void OnChunkResident(uint64_t bytes) { (void)bytes; }
  virtual void OnChunkEvicted(uint64_t bytes) { (void)bytes; }
};

// The real loader: positional reads against lazily opened files, one read per maximal
// file-contiguous run (entries merged from different shard files fall back to one read
// per contiguous piece), each run's entries verified against their pass-1 CRCs.
class FileReportsChunkLoader : public ReportsChunkLoader {
 public:
  // `set` only pre-sizes the file table; Load follows the set it is handed. `env`
  // nullptr = the production posix environment.
  explicit FileReportsChunkLoader(const StreamReportsSet* set, Env* env = nullptr);
  ~FileReportsChunkLoader() override;
  FileReportsChunkLoader(const FileReportsChunkLoader&) = delete;
  FileReportsChunkLoader& operator=(const FileReportsChunkLoader&) = delete;

  Status Load(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
              uint64_t count) override;
  void Evict(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
             uint64_t count) override;

 private:
  Status LoadRun(StreamReportsSet* set, size_t object, uint64_t first_seqnum,
                 uint64_t count);

  Env* const env_;
  std::mutex mu_;  // Guards files_ (lazy opens); reads themselves are lock-free.
  std::vector<std::shared_ptr<ReadableFile>> files_;  // null = not yet opened.
};

// A chunk-granular surface over both File loaders, consumed by the pass-2 prefetch
// pipeline (src/stream/prefetch.h). The stream session's task gate implements it — the
// gate owns the (rid, opnum) claim walk that knows which trace payloads and op-log runs
// a task needs — and the prefetcher drives it from its I/O thread: price the admission,
// page everything in, drop it again on revocation. The budget is deliberately NOT this
// surface's business: the prefetcher charges/refunds the shared ChunkBudget itself so
// ownership of the charge can transfer to the adopting worker without a release/reacquire
// window.
class PrefetchableLoader {
 public:
  virtual ~PrefetchableLoader() = default;

  // The task's admission price: resident trace payload + op-log content bytes.
  virtual uint64_t ChunkBytes(const AuditTask& task) = 0;
  // Pages the task's payloads and contents into the skeletons (residency brackets
  // included). On error the skeletons are left clean for this task — a later synchronous
  // load must see exactly what a never-prefetched run would.
  virtual Status FetchChunk(const AuditTask& task) = 0;
  // Undoes a successful FetchChunk (eviction + residency brackets, no budget).
  virtual void DropChunk(const AuditTask& task) = 0;
};

}  // namespace orochi

#endif  // SRC_STREAM_CHUNK_LOADER_H_
