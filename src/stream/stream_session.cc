// The out-of-core members of AuditSession (declared in src/core/audit_session.h): the
// two-pass streaming audit and its sharded-ingestion front door.
//
//   pass 1  StreamTraceSet/ShardMerge — stream every spill record, keep a skeleton+index
//   pass 2  ExecuteAuditPlan + StreamTaskGate — re-execute chunks whose request payloads
//           are paged in on demand under the ChunkBudget, evicted as tasks retire
//   pass 3  StreamedCompareOutputs — page response bodies in one at a time (point reads
//           via the pass-1 index) and compare against the produced outputs, in trace order
//
// Verdict, rejection reason, and final_state are bit-identical to the in-memory
// FeedEpoch/FeedEpochFiles path at every thread count: both paths run the same planner
// and executor (src/core/audit_plan.h) over the same AuditContext — the streaming path
// only changes *when* payload bytes are resident, never what the audit computes.
#include <string>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/core/audit_plan.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/stream/stream_audit.h"

namespace orochi {

namespace {

// Pages one chunk's request payloads in around its re-execution. Acquire/Release run on
// the worker thread executing the task, and pool tasks never share a rid (duplicate
// claims run serially after the join), so the skeleton events a gate call mutates are
// only ever read by that same thread's RunGroupChunk.
class StreamTaskGate : public AuditTaskGate {
 public:
  StreamTaskGate(StreamTraceSet* set, TraceChunkLoader* loader, ChunkBudget* budget)
      : set_(set), loader_(loader), budget_(budget) {}

  Status Acquire(const AuditTask& task) override {
    const uint64_t bytes = TaskBytes(task);
    budget_->Acquire(bytes);
    loader_->OnChunkResident(bytes);
    Trace* skeleton = set_->mutable_skeleton();
    for (size_t i = 0; i < task.rids.size(); i++) {
      size_t index = set_->RequestIndex(task.rids[i]);
      if (index == SIZE_MAX) {
        continue;  // Planning already verified every chunk rid is traced.
      }
      if (Status st = loader_->Load(*set_, index, &skeleton->events[index]); !st.ok()) {
        EvictPrefix(task, i + 1);
        loader_->OnChunkEvicted(bytes);
        budget_->Release(bytes);
        return st;
      }
    }
    return Status::Ok();
  }

  void Release(const AuditTask& task) override {
    EvictPrefix(task, task.rids.size());
    const uint64_t bytes = TaskBytes(task);
    loader_->OnChunkEvicted(bytes);
    budget_->Release(bytes);
  }

 private:
  uint64_t TaskBytes(const AuditTask& task) const {
    uint64_t bytes = 0;
    for (RequestId rid : task.rids) {
      size_t index = set_->RequestIndex(rid);
      if (index != SIZE_MAX) {
        bytes += set_->loc(index).bytes;
      }
    }
    return bytes;
  }

  void EvictPrefix(const AuditTask& task, size_t count) {
    Trace* skeleton = set_->mutable_skeleton();
    for (size_t i = 0; i < count; i++) {
      size_t index = set_->RequestIndex(task.rids[i]);
      if (index != SIZE_MAX) {
        loader_->Evict(*set_, index, &skeleton->events[index]);
      }
    }
  }

  StreamTraceSet* set_;
  TraceChunkLoader* loader_;
  ChunkBudget* budget_;
};

// Pass 3: AuditContext::CompareOutputs for an epoch whose skeleton holds no response
// bodies — page each response body in by itself (a point read via the pass-1 index, so
// the request payloads, the bulk of the file, are never re-read), run it through the
// context's shared per-response check so both paths reject with the same reason from the
// same code, and evict before moving on. Index order is trace order, and each body is
// charged to the budget while resident, so the resident-byte guarantee covers the
// compare pass too. *reject_reason carries the audit verdict (empty = outputs match);
// the Status is file health only.
Status StreamedCompareOutputs(const AuditContext& ctx, StreamTraceSet* set,
                              TraceChunkLoader* loader, ChunkBudget* budget,
                              std::string* reject_reason) {
  reject_reason->clear();
  Trace* skeleton = set->mutable_skeleton();
  for (size_t i = 0; i < set->num_events(); i++) {
    TraceEvent& event = skeleton->events[i];
    if (event.kind != TraceEvent::Kind::kResponse) {
      continue;
    }
    const uint64_t bytes = set->loc(i).bytes;
    budget->Acquire(bytes);
    loader->OnChunkResident(bytes);
    Status load = loader->Load(*set, i, &event);
    std::string verdict;
    if (load.ok()) {
      verdict = ctx.CheckResponseOutput(event.rid, event.body);
      loader->Evict(*set, i, &event);
    }
    loader->OnChunkEvicted(bytes);
    budget->Release(bytes);
    if (!load.ok()) {
      return load;
    }
    if (!verdict.empty()) {
      *reject_reason = std::move(verdict);
      return Status::Ok();
    }
  }
  return Status::Ok();
}

}  // namespace

Result<AuditResult> AuditSession::FeedMergedEpochStreamed(MergedShards&& merged,
                                                          const StreamAuditHooks* hooks) {
  using R = Result<AuditResult>;
  epochs_fed_++;
  AuditResult out;
  AuditContext ctx(&merged.traces.skeleton(), &merged.reports, app_, &state_, options_);
  auto reject = [&](std::string reason) {
    out.reason = std::move(reason);
    out.stats = ctx.stats();
    return R(out);
  };
  if (Status st = ctx.Prepare(); !st.ok()) {
    return reject(st.error());
  }

  AuditPlan plan = PlanAuditTasks(&ctx, merged.reports, app_, options_);

  FileTraceChunkLoader default_loader(&merged.traces);
  ChunkBudget default_budget(ResolveAuditBudget(options_));
  TraceChunkLoader* loader =
      hooks != nullptr && hooks->loader != nullptr ? hooks->loader : &default_loader;
  ChunkBudget* budget =
      hooks != nullptr && hooks->budget != nullptr ? hooks->budget : &default_budget;
  StreamTaskGate gate(&merged.traces, loader, budget);
  AuditExecOutcome exec = ExecuteAuditPlan(&ctx, app_, options_, plan, &gate);
  if (exec.gate_failed) {
    // Paging a chunk in failed (spill file vanished or changed mid-audit): a file-level
    // error, not a verdict — the epoch is unconsumed, exactly like a corrupt FeedEpochFiles.
    epochs_fed_--;
    return R::Error(exec.fail_reason);
  }
  if (exec.fail_order != kNoAuditFailure) {
    return reject(exec.fail_reason);
  }

  std::string compare_reason;
  {
    ScopedAccumulator t(&ctx.stats().other_seconds);
    if (Status st = StreamedCompareOutputs(ctx, &merged.traces, loader, budget,
                                           &compare_reason);
        !st.ok()) {
      epochs_fed_--;
      return R::Error(st.error());
    }
  }
  if (!compare_reason.empty()) {
    return reject(std::move(compare_reason));
  }
  CommitAccepted(&ctx, &out);
  return out;
}

Result<AuditResult> AuditSession::FeedEpochFilesStreamed(const std::string& trace_path,
                                                         const std::string& reports_path,
                                                         const StreamAuditHooks* hooks) {
  using R = Result<AuditResult>;
  // Built directly (not via MergeShards) so single-file error messages stay identical to
  // FeedEpochFiles' — the degenerate one-shard case is a drop-in replacement.
  MergedShards merged;
  Result<uint32_t> shard = merged.traces.AppendFile(trace_path);
  if (!shard.ok()) {
    return R::Error(shard.error());
  }
  Result<Reports> reports = ReadReportsFile(reports_path);
  if (!reports.ok()) {
    return R::Error(reports.error());
  }
  merged.reports = std::move(reports).value();
  merged.shard_ids.push_back(shard.value());
  return FeedMergedEpochStreamed(std::move(merged), hooks);
}

Result<AuditResult> AuditSession::FeedShardedEpoch(const std::vector<ShardEpochFiles>& shards,
                                                   const StreamAuditHooks* hooks) {
  Result<MergedShards> merged = MergeShards(shards);
  if (!merged.ok()) {
    return Result<AuditResult>::Error(merged.error());
  }
  return FeedMergedEpochStreamed(std::move(merged).value(), hooks);
}

Result<AuditResult> AuditSession::FeedShardedEpoch(const std::string& manifest_path,
                                                   const StreamAuditHooks* hooks) {
  Result<MergedShards> merged = MergeShardsFromManifest(manifest_path);
  if (!merged.ok()) {
    return Result<AuditResult>::Error(merged.error());
  }
  return FeedMergedEpochStreamed(std::move(merged).value(), hooks);
}

}  // namespace orochi
