// The out-of-core members of AuditSession (declared in src/core/audit_session.h): the
// two-pass streaming audit and its sharded-ingestion front door.
//
//   pass 1  StreamTraceSet + StreamReportsSet / ShardMerge — stream every spill record,
//           keep trace and reports skeletons + byte-offset indexes (payloads and op-log
//           contents stay on disk)
//   prepare AuditContext::Prepare — the versioned-store builds consume each op log as a
//           forward scan, paged in by SegmentedOpLogScanner in byte-capped segments
//   pass 2  ExecuteAuditPlan + StreamTaskGate — re-execute chunks whose request payloads
//           AND claimed op-log entry contents are paged in on demand, both charged to the
//           one ChunkBudget
//   pass 3  StreamedCompareOutputs — page response bodies in one at a time (point reads
//           via the pass-1 index) and compare against the produced outputs, in trace order
//
// Verdict, rejection reason, and final_state are bit-identical to the in-memory
// FeedEpoch/FeedEpochFiles path at every thread count: both paths run the same planner
// and executor (src/core/audit_plan.h) over the same AuditContext — the streaming path
// only changes *when* payload and contents bytes are resident, never what the audit
// computes.
#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/core/audit_plan.h"
#include "src/core/audit_session.h"
#include "src/objects/wire_format.h"
#include "src/stream/checkpoint.h"
#include "src/stream/prefetch.h"
#include "src/stream/stream_audit.h"

namespace orochi {

namespace {

// A maximal run of consecutive-seqnum op-log entries of one object a chunk's
// re-execution will CheckOp against — the loader's unit, one pread per file-contiguous
// piece.
struct ClaimedRun {
  size_t object;
  uint64_t first_seqnum;
  uint64_t count;
};

// What Acquire computed for a task, kept so Release never redoes the op-map walk.
struct ClaimedChunk {
  std::vector<ClaimedRun> runs;
  uint64_t trace_bytes = 0;
  uint64_t report_bytes = 0;
};

// Pages one chunk's request payloads and op-log entry contents in around its
// re-execution. Acquire/Release run on the worker thread executing the task; pool tasks
// never share a rid (duplicate claims run serially after the join), and every op-log
// entry is claimed by exactly one (rid, opnum) — CheckLogs rejects duplicate claims
// before any task runs — so the skeleton events and log entries a gate call mutates are
// only ever read by that same thread's RunGroupChunk.
//
// The gate is also the PrefetchableLoader the pass-2 read-ahead pipeline drives: it owns
// the claim walk, so ChunkBytes/FetchChunk/DropChunk (called from the prefetcher's I/O
// thread) price and page exactly the bytes Acquire would have. With a prefetcher
// installed, Acquire first offers the task to it (adopting the already-resident chunk and
// its budget charge on a hit) and otherwise loads synchronously through
// AcquireBudgetRevoking, so a starved worker reclaims read-ahead bytes instead of
// deadlocking behind them.
class StreamTaskGate : public AuditTaskGate, public PrefetchableLoader {
 public:
  StreamTaskGate(StreamTraceSet* traces, TraceChunkLoader* trace_loader,
                 StreamReportsSet* reports, ReportsChunkLoader* reports_loader,
                 ChunkBudget* budget, const AuditContext* ctx)
      : traces_(traces), trace_loader_(trace_loader), reports_(reports),
        reports_loader_(reports_loader), budget_(budget), ctx_(ctx) {}

  // Must be set (if at all) before ExecuteAuditPlan starts and outlive it.
  void set_prefetcher(ChunkPrefetcher* prefetcher) { prefetcher_ = prefetcher; }

  Status Acquire(const AuditTask& task) override {
    if (prefetcher_ != nullptr) {
      Status st = Status::Ok();
      switch (prefetcher_->Take(task.order, &st)) {
        case ChunkPrefetcher::TakeResult::kAdopted:
          return Status::Ok();  // Resident; the budget charge is now this worker's.
        case ChunkPrefetcher::TakeResult::kFailed:
          return st;  // Same task order a synchronous load failure would claim.
        case ChunkPrefetcher::TakeResult::kNotPrefetched:
          break;
      }
    }
    ClaimedChunk chunk = ClaimChunk(task);
    // One admission covers both sides: resident trace + reports bytes share the budget.
    const uint64_t bytes = chunk.trace_bytes + chunk.report_bytes;
    if (prefetcher_ != nullptr) {
      prefetcher_->AcquireBudgetRevoking(bytes);
    } else {
      budget_->Acquire(bytes);
    }
    if (Status st = LoadChunk(task, chunk); !st.ok()) {
      budget_->Release(bytes);
      if (prefetcher_ != nullptr) {
        prefetcher_->NotifyProgress();
      }
      return st;
    }
    std::lock_guard<std::mutex> lock(mu_);
    claimed_[task.order] = std::move(chunk);
    return Status::Ok();
  }

  void Release(const AuditTask& task) override {
    ClaimedChunk chunk = ExtractClaim(task.order);
    UnloadChunk(task, chunk);
    budget_->Release(chunk.trace_bytes + chunk.report_bytes);
    if (prefetcher_ != nullptr) {
      prefetcher_->NotifyProgress();  // Budget waiters (walk + revoking workers) retry.
    }
  }

  // --- PrefetchableLoader (prefetcher I/O thread) ---

  uint64_t ChunkBytes(const AuditTask& task) override {
    ClaimedChunk chunk = ClaimChunk(task);
    const uint64_t bytes = chunk.trace_bytes + chunk.report_bytes;
    std::lock_guard<std::mutex> lock(mu_);
    // Memoized for the FetchChunk that follows; a task the walk abandons after pricing
    // (stop, or its worker got there first) just leaves the claim cached here unused.
    priced_[task.order] = std::move(chunk);
    return bytes;
  }

  Status FetchChunk(const AuditTask& task) override {
    ClaimedChunk chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = priced_.find(task.order);
      chunk = std::move(it->second);  // FetchChunk always follows this task's ChunkBytes.
      priced_.erase(it);
    }
    if (Status st = LoadChunk(task, chunk); !st.ok()) {
      return st;  // Skeletons left clean; the prefetcher refunds the budget.
    }
    std::lock_guard<std::mutex> lock(mu_);
    claimed_[task.order] = std::move(chunk);
    return Status::Ok();
  }

  void DropChunk(const AuditTask& task) override {
    ClaimedChunk chunk = ExtractClaim(task.order);
    UnloadChunk(task, chunk);  // Budget refund is the prefetcher's.
  }

 private:
  // Pages the claim in: residency brackets, one batched trace load, one load per op-log
  // run. On error everything already installed is evicted again (skeletons clean; the
  // budget charge is untouched — each caller owns its own refund path).
  Status LoadChunk(const AuditTask& task, const ClaimedChunk& chunk) {
    trace_loader_->OnChunkResident(chunk.trace_bytes);
    reports_loader_->OnChunkResident(chunk.report_bytes);
    auto roll_back = [&](bool trace_loaded, size_t runs_loaded) {
      EvictTracePrefix(task, trace_loaded ? task.rids.size() : 0);
      EvictRuns(chunk.runs, runs_loaded);
      trace_loader_->OnChunkEvicted(chunk.trace_bytes);
      reports_loader_->OnChunkEvicted(chunk.report_bytes);
    };
    std::vector<size_t> indexes;
    indexes.reserve(task.rids.size());
    for (RequestId rid : task.rids) {
      size_t index = traces_->RequestIndex(rid);
      if (index != SIZE_MAX) {  // Planning already verified every chunk rid is traced.
        indexes.push_back(index);
      }
    }
    if (Status st = trace_loader_->LoadBatch(*traces_, indexes,
                                             traces_->mutable_skeleton());
        !st.ok()) {
      roll_back(false, 0);  // LoadBatch evicted its own partial installs.
      return st;
    }
    for (size_t i = 0; i < chunk.runs.size(); i++) {
      if (Status st = reports_loader_->Load(reports_, chunk.runs[i].object,
                                            chunk.runs[i].first_seqnum,
                                            chunk.runs[i].count);
          !st.ok()) {
        roll_back(true, i);
        return st;
      }
    }
    return Status::Ok();
  }

  void UnloadChunk(const AuditTask& task, const ClaimedChunk& chunk) {
    EvictTracePrefix(task, task.rids.size());
    EvictRuns(chunk.runs, chunk.runs.size());
    trace_loader_->OnChunkEvicted(chunk.trace_bytes);
    reports_loader_->OnChunkEvicted(chunk.report_bytes);
  }

  ClaimedChunk ExtractClaim(size_t order) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = claimed_.find(order);
    ClaimedChunk chunk = std::move(it->second);  // Always pairs a successful load.
    claimed_.erase(it);
    return chunk;
  }
  // One walk per task: the chunk's trace payload bytes, and the op-log entries its
  // CheckOps compare contents against — every (rid, opnum) claim of the chunk's rids,
  // except entries the skeleton types as db ops (their contents were parsed into the
  // context's db log during Prepare's redo scan, and CheckOp compares the parsed form,
  // never the raw contents). Entries are sorted and coalesced into consecutive-seqnum
  // runs so the loader fetches each run with single preads instead of one per entry.
  ClaimedChunk ClaimChunk(const AuditTask& task) const {
    ClaimedChunk chunk;
    const OpMap& op_map = ctx_->processed().op_map;
    const Reports& skeleton = reports_->skeleton();
    std::vector<std::pair<size_t, uint64_t>> entries;  // (object, seqnum)
    for (RequestId rid : task.rids) {
      size_t index = traces_->RequestIndex(rid);
      if (index != SIZE_MAX) {
        chunk.trace_bytes += traces_->loc(index).bytes;
      }
      const uint32_t m = ctx_->OpCount(rid);
      for (uint32_t opnum = 1; opnum <= m; opnum++) {
        OpLocation loc = op_map.Find(rid, opnum);
        if (!loc.valid() || loc.seqnum == 0 ||
            loc.object >= skeleton.op_logs.size() ||
            loc.seqnum > skeleton.op_logs[loc.object].size()) {
          continue;  // CheckLogs guarantees validity; stay defensive anyway.
        }
        if (skeleton.op_logs[loc.object][loc.seqnum - 1].type == StateOpType::kDbOp) {
          continue;
        }
        chunk.report_bytes += reports_->loc(loc.object, loc.seqnum).bytes;
        entries.emplace_back(loc.object, loc.seqnum);
      }
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [object, seqnum] : entries) {
      if (!chunk.runs.empty() && chunk.runs.back().object == object &&
          chunk.runs.back().first_seqnum + chunk.runs.back().count == seqnum) {
        chunk.runs.back().count++;
      } else {
        chunk.runs.push_back({object, seqnum, 1});
      }
    }
    return chunk;
  }

  void EvictTracePrefix(const AuditTask& task, size_t count) {
    Trace* skeleton = traces_->mutable_skeleton();
    for (size_t i = 0; i < count; i++) {
      size_t index = traces_->RequestIndex(task.rids[i]);
      if (index != SIZE_MAX) {
        trace_loader_->Evict(*traces_, index, &skeleton->events[index]);
      }
    }
  }

  void EvictRuns(const std::vector<ClaimedRun>& runs, size_t count) {
    for (size_t i = 0; i < count; i++) {
      reports_loader_->Evict(reports_, runs[i].object, runs[i].first_seqnum,
                             runs[i].count);
    }
  }

  StreamTraceSet* traces_;
  TraceChunkLoader* trace_loader_;
  StreamReportsSet* reports_;
  ReportsChunkLoader* reports_loader_;
  ChunkBudget* budget_;
  const AuditContext* ctx_;
  ChunkPrefetcher* prefetcher_ = nullptr;
  std::mutex mu_;  // Guards claimed_ and priced_ (one insert + one extract per task).
  std::unordered_map<size_t, ClaimedChunk> claimed_;
  std::unordered_map<size_t, ClaimedChunk> priced_;  // ChunkBytes -> FetchChunk handoff.
};

// Wraps the segment-paging scanner with checkpoint journaling: each object whose forward
// scan completes is recorded as a Prepare watermark, and objects a prior (killed) run
// already scanned are counted into stats. The store builds are in-memory, so a resumed
// Prepare must re-scan every object either way — the watermarks journal *progress* (and
// prove, fingerprint-bound, which scans the killed run retired), they do not skip work.
class JournalingOpLogScanner : public OpLogScanner {
 public:
  JournalingOpLogScanner(OpLogScanner* inner, CheckpointJournal* journal,
                         AuditStats* stats)
      : inner_(inner), journal_(journal), stats_(stats) {}

  Status Scan(size_t object,
              const std::function<Status(const OpRecord&, uint64_t)>& fn) override {
    if (journal_->PriorPrepareScan(object)) {
      stats_->prepare_watermarks_reused++;
    }
    Status st = inner_->Scan(object, fn);
    if (st.ok()) {
      journal_->RecordPrepareScan(object);
    }
    return st;
  }
  bool io_failed() const override { return inner_->io_failed(); }

 private:
  OpLogScanner* inner_;
  CheckpointJournal* journal_;
  AuditStats* stats_;
};

// How many responses pass 3 compares between compare-watermark journal appends. Each
// append is a frame + fsync; every 16 responses keeps resume granularity fine without
// making the fsync the compare loop's bottleneck.
constexpr uint64_t kCompareJournalEvery = 16;

// Pass 3: AuditContext::CompareOutputs for an epoch whose skeleton holds no response
// bodies — page each response body in by itself (a point read via the pass-1 index, so
// the request payloads, the bulk of the file, are never re-read), run it through the
// context's shared per-response check so both paths reject with the same reason from the
// same code, and evict before moving on. Index order is trace order, and each body is
// charged to the budget while resident, so the resident-byte guarantee covers the
// compare pass too. With a journal, responses below the prior run's compare watermark
// are skipped (their count lands in *resumed) — sound because the fingerprint binds each
// response payload's CRC and a surviving journal means every compared response matched —
// and the advancing watermark is journaled every kCompareJournalEvery responses.
// *reject_reason carries the audit verdict (empty = outputs match); the Status is file
// health only.
Status StreamedCompareOutputs(const AuditContext& ctx, StreamTraceSet* set,
                              TraceChunkLoader* loader, ChunkBudget* budget,
                              CheckpointJournal* journal, uint64_t* resumed,
                              std::string* reject_reason) {
  reject_reason->clear();
  *resumed = 0;
  const uint64_t watermark = journal != nullptr ? journal->prior_compare_watermark() : 0;
  uint64_t responses_seen = 0;
  Trace* skeleton = set->mutable_skeleton();
  for (size_t i = 0; i < set->num_events(); i++) {
    TraceEvent& event = skeleton->events[i];
    if (event.kind != TraceEvent::Kind::kResponse) {
      continue;
    }
    if (responses_seen < watermark) {
      responses_seen++;
      (*resumed)++;
      continue;
    }
    const uint64_t bytes = set->loc(i).bytes;
    budget->Acquire(bytes);
    loader->OnChunkResident(bytes);
    Status load = loader->Load(*set, i, &event);
    std::string verdict;
    if (load.ok()) {
      verdict = ctx.CheckResponseOutput(event.rid, event.body);
      loader->Evict(*set, i, &event);
    }
    loader->OnChunkEvicted(bytes);
    budget->Release(bytes);
    if (!load.ok()) {
      return load;
    }
    if (!verdict.empty()) {
      *reject_reason = std::move(verdict);
      return Status::Ok();
    }
    responses_seen++;
    if (journal != nullptr && responses_seen % kCompareJournalEvery == 0) {
      journal->RecordCompareWatermark(responses_seen);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<AuditResult> AuditSession::FeedMergedEpochStreamed(MergedShards&& merged,
                                                          const StreamAuditHooks* hooks) {
  using R = Result<AuditResult>;
  // Config errors are hard errors before the epoch is consumed.
  Result<size_t> threads = ResolveAuditThreads(options_);
  if (!threads.ok()) {
    return R::Error(threads.error());
  }
  Result<size_t> prefetch_depth = ResolvePrefetchDepth(options_);
  if (!prefetch_depth.ok()) {
    return R::Error(prefetch_depth.error());
  }
  uint64_t budget_bytes = 0;
  if (hooks == nullptr || hooks->budget == nullptr) {
    Result<uint64_t> resolved = ResolveAuditBudget(options_);
    if (!resolved.ok()) {
      return R::Error(resolved.error());
    }
    budget_bytes = resolved.value();
  }
  epochs_fed_++;
  AuditResult out;
  obs::PhaseTracer* tracer = obs::ResolveTracer(options_.tracer);
  const obs::PhaseBreakdown phase_mark = tracer->totals();
  AuditContext ctx(&merged.traces.skeleton(), &merged.reports.skeleton(), app_, &state_,
                   options_);
  auto reject = [&](std::string reason) {
    out.phases = tracer->totals().DiffSince(phase_mark);
    out.reason = std::move(reason);
    out.stats = ctx.stats();
    return R(out);
  };

  FileTraceChunkLoader default_loader(&merged.traces, options_.io_env);
  FileReportsChunkLoader default_reports_loader(&merged.reports, options_.io_env);
  ChunkBudget default_budget(budget_bytes);
  TraceChunkLoader* loader =
      hooks != nullptr && hooks->loader != nullptr ? hooks->loader : &default_loader;
  ReportsChunkLoader* reports_loader =
      hooks != nullptr && hooks->reports_loader != nullptr ? hooks->reports_loader
                                                           : &default_reports_loader;
  ChunkBudget* budget =
      hooks != nullptr && hooks->budget != nullptr ? hooks->budget : &default_budget;

  // Pass-1 transient residency (whole record payloads held while indexing) is outside
  // the chunk budget's sight; surface the peak so tests and operators can hold it against
  // the budget. v3 segmented spills bound it by one segment, not one object's log.
  ctx.stats().pass1_transient_peak_bytes = merged.reports.pass1_transient_peak_bytes();

  // Resumable audit: the sidecar checkpoint journals progress in every phase (Prepare
  // scan watermarks, pass-2 chunk tasks, the pass-3 compare watermark), so it opens
  // before Prepare. The fingerprint binds the journal to this exact (epoch content,
  // audit options) combination — computed from the pass-1 skeletons including payload
  // CRCs, so a stale, foreign, or tampered-epoch checkpoint contributes nothing. An
  // unusable checkpoint path is a file-level error — the epoch is unconsumed and
  // retryable.
  std::unique_ptr<CheckpointJournal> journal;
  if (!options_.checkpoint_path.empty()) {
    Result<std::unique_ptr<CheckpointJournal>> opened = CheckpointJournal::Open(
        options_.io_env, options_.checkpoint_path,
        StreamEpochFingerprint(state_, merged.traces, merged.reports, options_));
    if (!opened.ok()) {
      epochs_fed_--;
      return R::Error(opened.error());
    }
    journal = std::move(opened).value();
  }

  // The versioned-store builds inside Prepare() consume spilled op-log contents as
  // budget-bounded segment scans instead of resident logs; with a journal installed,
  // completed per-object scans are recorded as Prepare watermarks.
  SegmentedOpLogScanner scanner(&merged.reports, reports_loader, budget);
  JournalingOpLogScanner journaling_scanner(&scanner, journal.get(), &ctx.stats());
  ctx.set_oplog_scanner(journal != nullptr
                            ? static_cast<OpLogScanner*>(&journaling_scanner)
                            : static_cast<OpLogScanner*>(&scanner));
  Status prepared;
  {
    obs::TraceSpan span(tracer, obs::Phase::kPrepare);
    prepared = ctx.Prepare();
  }
  if (Status st = prepared; !st.ok()) {
    if (scanner.io_failed()) {
      // Paging a log segment in failed (spill file vanished or changed mid-audit): a
      // file-level error, not a verdict — the epoch is unconsumed. The journal keeps the
      // Prepare watermarks retired so far for the retry.
      epochs_fed_--;
      return R::Error(st.error());
    }
    return reject(st.error());
  }

  AuditPlan plan = PlanAuditTasks(&ctx, merged.reports.skeleton(), app_, options_);
  // Once a verdict (accept or reject) is reached the checkpoint is spent: the next audit
  // of this path starts from a different state, and leaving the file would only cost a
  // fingerprint-mismatch discard. Removal failures are therefore ignorable.
  auto spend_checkpoint = [&] {
    if (journal != nullptr) {
      journal->RemoveFile();
    }
  };

  StreamTaskGate gate(&merged.traces, loader, &merged.reports, reports_loader, budget,
                      &ctx);
  // Read-ahead: an I/O thread walks the pool's dispatch order ahead of the workers,
  // paging future chunks in under the same budget. It only changes when bytes become
  // resident, never what the audit computes; Stop() before pass 3 (and before any error
  // return) drains unclaimed chunks so the budget headroom is whole again.
  std::unique_ptr<ChunkPrefetcher> prefetcher;
  if (prefetch_depth.value() > 0) {
    std::vector<const AuditTask*> dispatch_order =
        PoolDispatchOrder(plan, threads.value());
    if (!dispatch_order.empty()) {
      prefetcher = std::make_unique<ChunkPrefetcher>(&gate, budget,
                                                     std::move(dispatch_order),
                                                     prefetch_depth.value(),
                                                     journal.get());
      gate.set_prefetcher(prefetcher.get());
      prefetcher->Start();
    }
  }
  AuditExecOutcome exec = ExecuteAuditPlan(&ctx, app_, options_, plan, &gate, journal.get());
  if (prefetcher != nullptr) {
    prefetcher->Stop();
  }
  if (hooks != nullptr && hooks->prefetch_stats != nullptr) {
    *hooks->prefetch_stats = prefetcher != nullptr ? prefetcher->stats() : PrefetchStats();
  }
  if (exec.gate_failed) {
    // Paging a chunk in failed (spill file vanished or changed mid-audit): a file-level
    // error, not a verdict — the epoch is unconsumed, exactly like a corrupt
    // FeedEpochFiles. The checkpoint survives for the retry.
    epochs_fed_--;
    return R::Error(exec.fail_reason);
  }
  if (exec.fail_order != kNoAuditFailure) {
    spend_checkpoint();
    return reject(exec.fail_reason);
  }

  std::string compare_reason;
  {
    ScopedAccumulator t(&ctx.stats().other_seconds);
    obs::TraceSpan span(tracer, obs::Phase::kPass3Compare);
    uint64_t resumed = 0;
    Status st = StreamedCompareOutputs(ctx, &merged.traces, loader, budget, journal.get(),
                                       &resumed, &compare_reason);
    ctx.stats().compare_records_resumed += resumed;
    if (!st.ok()) {
      // The journal keeps the compare watermark retired so far for the retry.
      epochs_fed_--;
      return R::Error(st.error());
    }
  }
  if (!compare_reason.empty()) {
    spend_checkpoint();
    return reject(std::move(compare_reason));
  }
  spend_checkpoint();
  out.phases = tracer->totals().DiffSince(phase_mark);
  CommitAccepted(&ctx, &out);
  return out;
}

Result<AuditResult> AuditSession::FeedEpochFilesStreamed(const std::string& trace_path,
                                                         const std::string& reports_path,
                                                         const StreamAuditHooks* hooks) {
  using R = Result<AuditResult>;
  obs::PhaseTracer* tracer = obs::ResolveTracer(options_.tracer);
  const obs::PhaseBreakdown phase_mark = tracer->totals();
  // Built directly (not via MergeShards) so single-file error messages stay identical to
  // FeedEpochFiles' — the degenerate one-shard case is a drop-in replacement.
  MergedShards merged;
  {
    obs::TraceSpan span(tracer, obs::Phase::kPass1Skeleton);
    Result<uint32_t> shard = merged.traces.AppendFile(trace_path, options_.io_env);
    if (!shard.ok()) {
      return R::Error(shard.error());
    }
    if (Status st = merged.reports.AppendFile(reports_path, options_.io_env); !st.ok()) {
      return R::Error(st.error());
    }
    merged.shard_ids.push_back(shard.value());
  }
  R result = FeedMergedEpochStreamed(std::move(merged), hooks);
  if (result.ok()) {
    // Re-attribute from the outer mark so pass-1 skeleton time is part of this epoch.
    result.value().phases = tracer->totals().DiffSince(phase_mark);
  }
  return result;
}

Result<AuditResult> AuditSession::FeedShardedEpoch(const std::vector<ShardEpochFiles>& shards,
                                                   const StreamAuditHooks* hooks) {
  // Per-shard pass-1 builds overlap on the audit's own worker count; a config error here
  // surfaces before any shard is read.
  Result<size_t> threads = ResolveAuditThreads(options_);
  if (!threads.ok()) {
    return Result<AuditResult>::Error(threads.error());
  }
  obs::PhaseTracer* tracer = obs::ResolveTracer(options_.tracer);
  const obs::PhaseBreakdown phase_mark = tracer->totals();
  Result<MergedShards> merged = [&] {
    obs::TraceSpan span(tracer, obs::Phase::kShardMerge);
    return MergeShards(shards, {}, options_.io_env, threads.value());
  }();
  if (!merged.ok()) {
    return Result<AuditResult>::Error(merged.error());
  }
  Result<AuditResult> result = FeedMergedEpochStreamed(std::move(merged).value(), hooks);
  if (result.ok()) {
    // Re-attribute from the outer mark so shard-merge time is part of this epoch.
    result.value().phases = tracer->totals().DiffSince(phase_mark);
  }
  return result;
}

Result<AuditResult> AuditSession::FeedShardedEpoch(const std::string& manifest_path,
                                                   const StreamAuditHooks* hooks) {
  Result<size_t> threads = ResolveAuditThreads(options_);
  if (!threads.ok()) {
    return Result<AuditResult>::Error(threads.error());
  }
  obs::PhaseTracer* tracer = obs::ResolveTracer(options_.tracer);
  const obs::PhaseBreakdown phase_mark = tracer->totals();
  Result<MergedShards> merged = [&] {
    obs::TraceSpan span(tracer, obs::Phase::kShardMerge);
    return MergeShardsFromManifest(manifest_path, options_.io_env, threads.value());
  }();
  if (!merged.ok()) {
    return Result<AuditResult>::Error(merged.error());
  }
  Result<AuditResult> result = FeedMergedEpochStreamed(std::move(merged).value(), hooks);
  if (result.ok()) {
    // Re-attribute from the outer mark so shard-merge time is part of this epoch.
    result.value().phases = tracer->totals().DiffSince(phase_mark);
  }
  return result;
}

}  // namespace orochi
