// Merge-join of per-collector spill-file pairs into one logical epoch, so a single
// verifier can audit many front ends (the ROADMAP's sharded-collector deployment):
//
//   shard 3 ── trace_3.bin / reports_3.bin ─┐
//   shard 1 ── trace_1.bin / reports_1.bin ─┼─ MergeShards ─► one skeleton trace set
//   shard 2 ── trace_2.bin / reports_2.bin ─┘                 + one merged Reports
//
// Determinism: shards always merge in ascending stamped-shard-id order (argument position
// breaks ties, covering unstamped files), traces concatenate in that order, and reports
// merge via AppendReports — so every verifier that feeds the same file set computes the
// same logical epoch, byte for byte. A requestID appearing in two shards' traces or
// reports is a merge error: shards are front-end slices of disjoint traffic, and a shared
// rid would make the concatenated trace unbalanced by construction.
#ifndef SRC_STREAM_SHARD_MERGE_H_
#define SRC_STREAM_SHARD_MERGE_H_

#include <string>
#include <vector>

#include "src/common/io_env.h"
#include "src/common/result.h"
#include "src/core/audit_session.h"
#include "src/objects/reports.h"
#include "src/stream/reports_index.h"
#include "src/stream/trace_index.h"

namespace orochi {

struct MergedShards {
  StreamTraceSet traces;     // Shard traces appended in merge order (pass-1 skeletons).
  // Shard reports streamed into one skeleton + op-log offset index, merged with
  // AppendReports semantics (object-id remap, group-tag merge) — contents stay on disk.
  StreamReportsSet reports;
  std::vector<uint32_t> shard_ids;  // Stamped ids in merge order (0 = unstamped).
};

// `expected_ids`, when nonempty (the manifest path), must parallel `shards`; each entry is
// checked against the trace file's stamped id — a collector that stamped shard 3 cannot be
// passed off as the manifest's shard 2.
//
// Per-shard pass-1 skeleton builds run in parallel on a work-stealing pool of
// `num_threads` workers (0 or 1 = sequential), then fold sequentially in merge order, so
// the merged epoch is bit-identical at every thread count. A shard whose files fail to
// stream is quarantined: the merge errors out naming the shard id and both file paths,
// so the operator knows exactly which collector's spill to restore. Reads go through
// `env` (nullptr = the production posix environment).
Result<MergedShards> MergeShards(const std::vector<ShardEpochFiles>& shards,
                                 const std::vector<uint32_t>& expected_ids = {},
                                 Env* env = nullptr, size_t num_threads = 0);

// Reads a wire-format shard manifest and merges the pairs it names, resolving relative
// spill paths against the manifest file's directory.
Result<MergedShards> MergeShardsFromManifest(const std::string& manifest_path,
                                             Env* env = nullptr, size_t num_threads = 0);

}  // namespace orochi

#endif  // SRC_STREAM_SHARD_MERGE_H_
