#include "src/stream/chunk_loader.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/objects/wire_format.h"

namespace orochi {

uint64_t ResolveAuditBudget(const AuditOptions& options) {
  if (options.max_resident_bytes > 0) {
    return options.max_resident_bytes;
  }
  if (const char* env = std::getenv("OROCHI_AUDIT_BUDGET")) {
    long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<uint64_t>(v);
    }
  }
  return 0;
}

void ChunkBudget::Acquire(uint64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return used_ == 0 || max_ == 0 || used_ + bytes <= max_; });
  used_ += bytes;
  if (used_ > peak_) {
    peak_ = used_;
  }
}

void ChunkBudget::Release(uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    used_ -= bytes;
  }
  cv_.notify_all();
}

uint64_t ChunkBudget::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

FileTraceChunkLoader::FileTraceChunkLoader(const StreamTraceSet* set)
    : fds_(set->num_files(), -1) {}

FileTraceChunkLoader::~FileTraceChunkLoader() {
  for (int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

Status FileTraceChunkLoader::Load(const StreamTraceSet& set, size_t index,
                                  TraceEvent* event) {
  const TraceEventLoc& loc = set.loc(index);
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (loc.file >= fds_.size()) {
      // The set driving the audit can be larger than the one this loader was sized from
      // (a hooks loader built over a probe set while FeedShardedEpoch merges N files).
      fds_.resize(set.num_files(), -1);
    }
    fd = fds_[loc.file];
    if (fd < 0) {
      fd = ::open(set.file_path(loc.file).c_str(), O_RDONLY);
      if (fd < 0) {
        return Status::Error("stream: cannot reopen " + set.file_path(loc.file) +
                             " for chunk load");
      }
      fds_[loc.file] = fd;
    }
  }
  std::string payload(static_cast<size_t>(loc.bytes), '\0');
  size_t done = 0;
  while (done < payload.size()) {
    ssize_t n = ::pread(fd, &payload[done], payload.size() - done,
                        static_cast<off_t>(loc.offset + done));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return Status::Error("stream: short read at offset " + std::to_string(loc.offset) +
                           " in " + set.file_path(loc.file));
    }
    done += static_cast<size_t>(n);
  }
  Result<TraceEvent> decoded = DecodeTraceEventPayload(loc.record_type, payload);
  if (!decoded.ok()) {
    return Status::Error("stream: " + set.file_path(loc.file) +
                         " changed during the audit: " + decoded.error());
  }
  if (decoded.value().rid != event->rid) {
    return Status::Error("stream: " + set.file_path(loc.file) +
                         " changed during the audit: rid mismatch at offset " +
                         std::to_string(loc.offset));
  }
  if (event->kind == TraceEvent::Kind::kRequest) {
    event->params = std::move(decoded.value().params);
  } else {
    event->body = std::move(decoded.value().body);
  }
  return Status::Ok();
}

void FileTraceChunkLoader::Evict(const StreamTraceSet& set, size_t index,
                                 TraceEvent* event) {
  (void)set;
  (void)index;
  if (event->kind == TraceEvent::Kind::kRequest) {
    event->params = RequestParams{};
  } else {
    event->body.clear();
    event->body.shrink_to_fit();
  }
}

}  // namespace orochi
