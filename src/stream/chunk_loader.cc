#include "src/stream/chunk_loader.h"

#include <cstdlib>
#include <string>
#include <utility>

#include <chrono>

#include "src/common/crc32c.h"
#include "src/common/strings.h"
#include "src/objects/wire_format.h"
#include "src/obs/metrics.h"
#include "src/stream/reports_index.h"

namespace orochi {

namespace {

// Budget-gate instruments: every chunk admission in the streamed audit funnels through
// ChunkBudget::Acquire, so this is where stalls and oversized one-at-a-time admissions
// become visible.
struct BudgetMetrics {
  obs::Counter* acquires;
  obs::Counter* waits;
  obs::Counter* oversized;
  obs::Histogram* wait_seconds;
  obs::Gauge* used_bytes;
  obs::Gauge* peak_bytes;
  obs::Gauge* largest_acquire;

  static BudgetMetrics* Get() {
    static BudgetMetrics* const m = [] {
      auto* registry = obs::MetricsRegistry::Default();
      auto* out = new BudgetMetrics();
      out->acquires = registry->GetCounter("orochi_budget_acquires_total",
                                           "chunk admissions through the audit budget");
      out->waits = registry->GetCounter(
          "orochi_budget_waits_total",
          "chunk admissions that had to wait for resident bytes to drain");
      out->oversized = registry->GetCounter(
          "orochi_budget_oversized_admissions_total",
          "chunks larger than the whole budget, admitted one-at-a-time");
      out->wait_seconds = registry->GetHistogram(
          "orochi_budget_wait_seconds", "time spent blocked waiting for budget headroom",
          {0.0001, 0.001, 0.01, 0.1, 1, 10});
      out->used_bytes = registry->GetGauge("orochi_budget_used_bytes",
                                           "resident chunk bytes currently admitted");
      out->peak_bytes = registry->GetGauge("orochi_budget_peak_bytes",
                                           "high-water mark of resident chunk bytes");
      out->largest_acquire = registry->GetGauge(
          "orochi_budget_largest_acquire_bytes", "largest single chunk admission seen");
      return out;
    }();
    return m;
  }
};

// Pread-coalescing instruments shared by both File loaders: `issued` counts preads the
// loaders actually performed, `coalesced` counts the additional preads merging adjacent
// payload runs avoided (v3 op-log segmentation splits formerly contiguous entry runs;
// bridging its ~37-byte framing gap stitches them back into one read).
struct ReadMetrics {
  obs::Counter* issued;
  obs::Counter* coalesced;

  static ReadMetrics* Get() {
    static ReadMetrics* const m = [] {
      auto* registry = obs::MetricsRegistry::Default();
      auto* out = new ReadMetrics();
      out->issued = registry->GetCounter("orochi_chunk_reads_issued_total",
                                         "preads issued by the chunk loaders");
      out->coalesced = registry->GetCounter(
          "orochi_chunk_reads_coalesced_total",
          "additional preads avoided by merging adjacent payload runs (segment-gap "
          "bridging included)");
      return out;
    }();
    return m;
  }
};

}  // namespace

Result<uint64_t> ResolveAuditBudget(const AuditOptions& options) {
  if (options.max_resident_bytes > 0) {
    return static_cast<uint64_t>(options.max_resident_bytes);
  }
  if (const char* env = std::getenv("OROCHI_AUDIT_BUDGET")) {
    Result<uint64_t> v = ParseUint64(env);
    if (!v.ok()) {
      // A malformed budget must not silently audit unbounded: it is a config error.
      return Result<uint64_t>::Error("config: OROCHI_AUDIT_BUDGET='" + std::string(env) +
                                     "' is not a valid byte budget (" + v.error() + ")");
    }
    return v;  // 0 keeps its documented meaning: unlimited.
  }
  return static_cast<uint64_t>(0);
}

void ChunkBudget::Acquire(uint64_t bytes) {
  BudgetMetrics* metrics = BudgetMetrics::Get();
  metrics->acquires->Inc();
  if (max_ != 0 && bytes > max_) {
    metrics->oversized->Inc();  // Admitted solo via the used_ == 0 arm below.
  }
  std::unique_lock<std::mutex> lock(mu_);
  const auto admitted = [&] { return used_ == 0 || max_ == 0 || used_ + bytes <= max_; };
  if (!admitted()) {
    metrics->waits->Inc();
    const auto wait_start = std::chrono::steady_clock::now();
    cv_.wait(lock, admitted);
    metrics->wait_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_start)
            .count());
  }
  used_ += bytes;
  if (used_ > peak_) {
    peak_ = used_;
  }
  if (bytes > largest_acquire_) {
    largest_acquire_ = bytes;
  }
  metrics->used_bytes->Set(static_cast<int64_t>(used_));
  metrics->peak_bytes->SetMax(static_cast<int64_t>(peak_));
  metrics->largest_acquire->SetMax(static_cast<int64_t>(largest_acquire_));
}

bool ChunkBudget::TryAcquire(uint64_t bytes) {
  BudgetMetrics* metrics = BudgetMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!(used_ == 0 || max_ == 0 || used_ + bytes <= max_)) {
      return false;
    }
    metrics->acquires->Inc();
    if (max_ != 0 && bytes > max_) {
      metrics->oversized->Inc();  // Admitted solo via the used_ == 0 arm.
    }
    used_ += bytes;
    if (used_ > peak_) {
      peak_ = used_;
    }
    if (bytes > largest_acquire_) {
      largest_acquire_ = bytes;
    }
    metrics->used_bytes->Set(static_cast<int64_t>(used_));
    metrics->peak_bytes->SetMax(static_cast<int64_t>(peak_));
    metrics->largest_acquire->SetMax(static_cast<int64_t>(largest_acquire_));
  }
  return true;
}

void ChunkBudget::Release(uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    used_ -= bytes;
    BudgetMetrics::Get()->used_bytes->Set(static_cast<int64_t>(used_));
  }
  cv_.notify_all();
}

uint64_t ChunkBudget::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

uint64_t ChunkBudget::largest_acquire_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return largest_acquire_;
}

Status TraceChunkLoader::LoadBatch(const StreamTraceSet& set,
                                   const std::vector<size_t>& indexes, Trace* skeleton) {
  for (size_t i = 0; i < indexes.size(); i++) {
    if (Status st = Load(set, indexes[i], &skeleton->events[indexes[i]]); !st.ok()) {
      for (size_t j = 0; j < i; j++) {
        Evict(set, indexes[j], &skeleton->events[indexes[j]]);
      }
      return st;
    }
  }
  return Status::Ok();
}

FileTraceChunkLoader::FileTraceChunkLoader(const StreamTraceSet* set, Env* env)
    : env_(ResolveEnv(env)), files_(set->num_files()) {}

FileTraceChunkLoader::~FileTraceChunkLoader() = default;

Result<std::shared_ptr<ReadableFile>> FileTraceChunkLoader::OpenFile(
    const StreamTraceSet& set, uint32_t file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file >= files_.size()) {
    // The set driving the audit can be larger than the one this loader was sized from
    // (a hooks loader built over a probe set while FeedShardedEpoch merges N files).
    files_.resize(set.num_files());
  }
  if (files_[file] == nullptr) {
    Result<std::unique_ptr<ReadableFile>> opened = env_->OpenRead(set.file_path(file));
    if (!opened.ok()) {
      return Result<std::shared_ptr<ReadableFile>>::Error(
          "stream: cannot reopen " + set.file_path(file) +
          " for chunk load: " + opened.error());
    }
    files_[file] = std::move(opened).value();
  }
  return files_[file];
}

Status FileTraceChunkLoader::InstallPayload(const StreamTraceSet& set, size_t index,
                                            TraceEvent* event, const char* payload,
                                            size_t n) {
  const TraceEventLoc& loc = set.loc(index);
  if (Crc32c(payload, n) != loc.crc) {
    return Status::Error("stream: " + set.file_path(loc.file) +
                         " changed during the audit: payload at offset " +
                         std::to_string(loc.offset) + " failed checksum");
  }
  Result<TraceEvent> decoded =
      DecodeTraceEventPayload(loc.record_type, std::string(payload, n));
  if (!decoded.ok()) {
    return Status::Error("stream: " + set.file_path(loc.file) +
                         " changed during the audit: " + decoded.error());
  }
  if (decoded.value().rid != event->rid) {
    return Status::Error("stream: " + set.file_path(loc.file) +
                         " changed during the audit: rid mismatch at offset " +
                         std::to_string(loc.offset));
  }
  if (event->kind == TraceEvent::Kind::kRequest) {
    event->params = std::move(decoded.value().params);
  } else {
    event->body = std::move(decoded.value().body);
  }
  return Status::Ok();
}

Status FileTraceChunkLoader::Load(const StreamTraceSet& set, size_t index,
                                  TraceEvent* event) {
  const TraceEventLoc& loc = set.loc(index);
  Result<std::shared_ptr<ReadableFile>> file = OpenFile(set, loc.file);
  if (!file.ok()) {
    return Status::Error(file.error());
  }
  std::string payload(static_cast<size_t>(loc.bytes), '\0');
  ReadMetrics::Get()->issued->Inc();
  if (Status st = env_
                      ->StartReadAt(file.value().get(), set.file_path(loc.file),
                                    loc.offset, payload.size(),
                                    payload.empty() ? nullptr : &payload[0])
                      ->Wait();
      !st.ok()) {
    return st;
  }
  return InstallPayload(set, index, event, payload.data(), payload.size());
}

Status FileTraceChunkLoader::LoadBatch(const StreamTraceSet& set,
                                       const std::vector<size_t>& indexes,
                                       Trace* skeleton) {
  // Sort by file position, then carve into spans whose payloads sit at most
  // kCoalesceGapBytes apart — one pread per span instead of one per event. The trace
  // spill interleaves request and response records, so a chunk's request payloads are
  // adjacent exactly when its requests arrived back-to-back.
  std::vector<size_t> sorted = indexes;
  std::sort(sorted.begin(), sorted.end(), [&set](size_t a, size_t b) {
    const TraceEventLoc& la = set.loc(a);
    const TraceEventLoc& lb = set.loc(b);
    return la.file != lb.file ? la.file < lb.file : la.offset < lb.offset;
  });
  std::vector<size_t> installed;
  auto fail = [&](Status st) {
    for (size_t index : installed) {
      Evict(set, index, &skeleton->events[index]);
    }
    return st;
  };
  size_t span_start = 0;
  std::string buf;
  while (span_start < sorted.size()) {
    const TraceEventLoc& head = set.loc(sorted[span_start]);
    size_t span_len = 1;
    while (span_start + span_len < sorted.size()) {
      const TraceEventLoc& prev = set.loc(sorted[span_start + span_len - 1]);
      const TraceEventLoc& next = set.loc(sorted[span_start + span_len]);
      const uint64_t prev_end = prev.offset + prev.bytes;
      if (next.file != head.file || next.offset < prev_end ||
          next.offset - prev_end > kCoalesceGapBytes) {
        break;
      }
      span_len++;
    }
    Result<std::shared_ptr<ReadableFile>> file = OpenFile(set, head.file);
    if (!file.ok()) {
      return fail(Status::Error(file.error()));
    }
    const TraceEventLoc& tail = set.loc(sorted[span_start + span_len - 1]);
    const size_t span_bytes = static_cast<size_t>(tail.offset + tail.bytes - head.offset);
    buf.resize(span_bytes);
    ReadMetrics::Get()->issued->Inc();
    ReadMetrics::Get()->coalesced->Inc(span_len - 1);
    if (Status st = env_
                        ->StartReadAt(file.value().get(), set.file_path(head.file),
                                      head.offset, span_bytes,
                                      span_bytes == 0 ? nullptr : &buf[0])
                        ->Wait();
        !st.ok()) {
      return fail(st);
    }
    for (size_t k = 0; k < span_len; k++) {
      const size_t index = sorted[span_start + k];
      const TraceEventLoc& loc = set.loc(index);
      if (Status st = InstallPayload(set, index, &skeleton->events[index],
                                     buf.data() + (loc.offset - head.offset),
                                     static_cast<size_t>(loc.bytes));
          !st.ok()) {
        return fail(st);
      }
      installed.push_back(index);
    }
    span_start += span_len;
  }
  return Status::Ok();
}

void FileTraceChunkLoader::Evict(const StreamTraceSet& set, size_t index,
                                 TraceEvent* event) {
  (void)set;
  (void)index;
  if (event->kind == TraceEvent::Kind::kRequest) {
    event->params = RequestParams{};
  } else {
    event->body.clear();
    event->body.shrink_to_fit();
  }
}

FileReportsChunkLoader::FileReportsChunkLoader(const StreamReportsSet* set, Env* env)
    : env_(ResolveEnv(env)), files_(set->num_files()) {}

FileReportsChunkLoader::~FileReportsChunkLoader() = default;

Status FileReportsChunkLoader::Load(StreamReportsSet* set, size_t object,
                                    uint64_t first_seqnum, uint64_t count) {
  // Split the range into maximal near-contiguous per-file runs — one pread per run.
  // Entries merged from different shard files never coalesce across the file boundary,
  // and a gap of up to kCoalesceGapBytes within one file is bridged (v3 segmented spills
  // put ~37 bytes of record + segment framing between entries that v1/v2 wrote
  // back-to-back; the gap bytes are read and discarded).
  uint64_t start = first_seqnum;
  const uint64_t end = first_seqnum + count;
  while (start < end) {
    const OpLogEntryLoc& head = set->loc(object, start);
    uint64_t run = 1;
    while (start + run < end) {
      const OpLogEntryLoc& prev = set->loc(object, start + run - 1);
      const OpLogEntryLoc& next = set->loc(object, start + run);
      const uint64_t prev_end = prev.offset + prev.bytes;
      if (next.file != head.file || next.offset < prev_end ||
          next.offset - prev_end > kCoalesceGapBytes) {
        break;
      }
      run++;
    }
    if (Status st = LoadRun(set, object, start, run); !st.ok()) {
      Evict(set, object, first_seqnum, start - first_seqnum);
      return st;
    }
    start += run;
  }
  return Status::Ok();
}

Status FileReportsChunkLoader::LoadRun(StreamReportsSet* set, size_t object,
                                       uint64_t first_seqnum, uint64_t count) {
  const OpLogEntryLoc& head = set->loc(object, first_seqnum);
  const OpLogEntryLoc& tail = set->loc(object, first_seqnum + count - 1);
  const size_t span = static_cast<size_t>(tail.offset + tail.bytes - head.offset);
  std::shared_ptr<ReadableFile> file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (head.file >= files_.size()) {
      // The set driving the audit can be larger than the one this loader was sized from
      // (a hooks loader built over a probe set while FeedShardedEpoch merges N files).
      files_.resize(set->num_files());
    }
    if (files_[head.file] == nullptr) {
      Result<std::unique_ptr<ReadableFile>> opened =
          env_->OpenRead(set->file_path(head.file));
      if (!opened.ok()) {
        return Status::Error("stream: cannot reopen " + set->file_path(head.file) +
                             " for op-log load: " + opened.error());
      }
      files_[head.file] = std::move(opened).value();
    }
    file = files_[head.file];
  }
  std::string frames(span, '\0');
  ReadMetrics::Get()->issued->Inc();
  ReadMetrics::Get()->coalesced->Inc(count - 1);
  if (Status st = env_
                      ->StartReadAt(file.get(), set->file_path(head.file), head.offset,
                                    frames.size(), frames.empty() ? nullptr : &frames[0])
                      ->Wait();
      !st.ok()) {
    return st;
  }
  // Verify each frame against its pass-1 CRC, then decode and check it still matches the
  // skeleton entry it claims to be — a reports file mutated mid-audit surfaces as an I/O
  // error, never as misattribution.
  std::vector<OpRecord>& log = set->mutable_skeleton()->op_logs[object];
  for (uint64_t i = 0; i < count; i++) {
    const OpLogEntryLoc& loc = set->loc(object, first_seqnum + i);
    const size_t pos = static_cast<size_t>(loc.offset - head.offset);
    OpRecord decoded;
    Status st = Status::Ok();
    if (Crc32c(frames.data() + pos, static_cast<size_t>(loc.bytes)) != loc.crc) {
      st = Status::Error("checksum");
    } else {
      st = DecodeOpLogEntry(frames.data() + pos, static_cast<size_t>(loc.bytes),
                            &decoded);
    }
    OpRecord& entry = log[static_cast<size_t>(first_seqnum - 1 + i)];
    if (!st.ok() || decoded.rid != entry.rid || decoded.opnum != entry.opnum ||
        decoded.type != entry.type) {
      Evict(set, object, first_seqnum, i);
      return Status::Error("stream: " + set->file_path(head.file) +
                           " changed during the audit: op-log entry mismatch at offset " +
                           std::to_string(loc.offset));
    }
    entry.contents = std::move(decoded.contents);
  }
  return Status::Ok();
}

void FileReportsChunkLoader::Evict(StreamReportsSet* set, size_t object,
                                   uint64_t first_seqnum, uint64_t count) {
  std::vector<OpRecord>& log = set->mutable_skeleton()->op_logs[object];
  for (uint64_t i = 0; i < count; i++) {
    OpRecord& entry = log[static_cast<size_t>(first_seqnum - 1 + i)];
    entry.contents.clear();
    entry.contents.shrink_to_fit();
  }
}

}  // namespace orochi
