// Budget-aware read-ahead for pass 2 of the streamed audit: a dedicated I/O thread walks
// the plan's pool dispatch order (PoolDispatchOrder — costliest-first when the pool is
// parallel, plan order otherwise) ahead of the workers, admits up to `depth` future
// chunks through the SAME ChunkBudget the workers use, and pages their trace payloads +
// op-log contents in, so a worker claiming chunk N finds its bytes already resident and
// spends its time re-executing instead of blocked on preads.
//
// Invariants the pipeline must not bend:
//   - One budget, one ceiling. Prefetched bytes are charged to the worker budget before
//     a single byte is read; peak residency stays ≤ max(budget, largest admission). A
//     prefetched chunk bigger than the whole budget rides the same oversized-chunk
//     solo-admission arm a worker's would.
//   - Verdict determinism. The prefetcher only moves *when* bytes become resident. A
//     chunk's load error surfaces at that chunk's gate Acquire — the same task order, the
//     same smallest-order-wins failure rule — so verdict/reason/final_state are
//     bit-identical at every (thread count × budget × depth), depth 0 included.
//   - No deadlock against the budget. The budget's progress guarantee ("holders never
//     block between Acquire and Release") does not cover a ready-but-unclaimed prefetched
//     chunk, so the prefetcher's holdings are *revocable*: a worker that needs budget for
//     a non-prefetched chunk revokes ready chunks (dropping their bytes, refunding the
//     budget) instead of sleeping behind them, and the prefetcher itself only ever
//     TryAcquires. At most one chunk is ever mid-fetch (the walk is serial), Take() only
//     blocks on that one, and every completion / adoption / revocation / gate release
//     bumps a progress generation that wakes all budget waiters — so some holder always
//     drains: executing workers release, the in-flight fetch completes into a revocable
//     state, and revocable chunks yield to whoever is starved.
//
// Serial tasks (duplicate-claim chunks, run after the pool joins) are deliberately not
// prefetched: their rids overlap pool chunks, and fetching them early would write the
// same skeleton entries a pool worker still owns.
#ifndef SRC_STREAM_PREFETCH_H_
#define SRC_STREAM_PREFETCH_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/core/audit_context.h"
#include "src/core/audit_plan.h"
#include "src/stream/chunk_loader.h"

namespace orochi {

// Read-ahead depth a streamed audit resolves to: AuditOptions::prefetch_depth when not
// kPrefetchDepthAuto, else the OROCHI_PREFETCH_DEPTH environment variable, else
// kDefaultPrefetchDepth. 0 disables the pipeline. A set but malformed environment value
// is a hard configuration error, never a silent fallback — same contract as
// ResolveAuditBudget / ResolveAuditThreads.
inline constexpr size_t kDefaultPrefetchDepth = 2;
Result<size_t> ResolvePrefetchDepth(const AuditOptions& options);

// Final counters of one audit's prefetch pipeline; mirrored into the process-wide
// registry as orochi_prefetch_*_total and surfaced per-run via
// StreamAuditHooks::prefetch_stats.
struct PrefetchStats {
  uint64_t issued = 0;   // Chunks the I/O thread fetched to completion.
  uint64_t hits = 0;     // Gate acquires served from a prefetched chunk.
  uint64_t misses = 0;   // Gate acquires that beat the prefetcher (loaded synchronously).
  uint64_t revoked = 0;  // Ready chunks dropped to refund budget to a starved worker.
  uint64_t bytes = 0;    // Payload bytes fetched ahead of the workers.
};

class ChunkPrefetcher {
 public:
  // `order`: the pool dispatch order (pointers into the plan, which must outlive the
  // prefetcher). `journal`: optional; tasks it can replay never reach the gate, so the
  // walk skips them. `depth` must be > 0 (callers gate on ResolvePrefetchDepth).
  ChunkPrefetcher(PrefetchableLoader* loader, ChunkBudget* budget,
                  std::vector<const AuditTask*> order, size_t depth,
                  AuditTaskJournal* journal);
  ~ChunkPrefetcher();  // Stops and drains if Stop() was not called.
  ChunkPrefetcher(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher& operator=(const ChunkPrefetcher&) = delete;

  void Start();
  // Joins the I/O thread and drops every fetched-but-unclaimed chunk, refunding its
  // budget. Must be called (or the destructor run) before the budget is reused by pass 3.
  void Stop();

  // The gate's Acquire handshake for `task_order`:
  //   kAdopted       — the chunk is resident and its budget charge now belongs to the
  //                    caller (release it at gate Release exactly as a sync admission).
  //   kFailed        — the prefetch load failed; *status has the error, the budget is
  //                    already refunded. Surface it as this task's gate failure.
  //   kNotPrefetched — the walk has not fetched this chunk (not reached, ceded, or
  //                    revoked); load synchronously via AcquireBudgetRevoking.
  // Blocks only while this exact chunk is mid-fetch (the wait is bounded by that one
  // I/O, and is counted into the hit-latency histogram).
  enum class TakeResult { kAdopted, kFailed, kNotPrefetched };
  TakeResult Take(size_t task_order, Status* status);

  // Budget acquire for a worker loading a non-prefetched chunk: TryAcquire, revoking
  // ready-but-unclaimed prefetched chunks (farthest-ahead first) instead of sleeping
  // behind them, and otherwise waiting for the next progress bump.
  void AcquireBudgetRevoking(uint64_t bytes);

  // Gate Release (and every other budget release on the worker side) must call this so
  // budget waiters — the walk and AcquireBudgetRevoking — re-try.
  void NotifyProgress();

  PrefetchStats stats() const;

 private:
  enum class SlotState : uint8_t {
    kPending,   // Walk not there yet.
    kFetching,  // I/O thread is admitting/loading it.
    kReady,     // Resident, budget charged, waiting for its worker.
    kTaken,     // Adopted by its worker.
    kCeded,     // Worker claimed it before the walk arrived; walk skips it.
    kRevoked,   // Dropped to refund budget; its worker reloads synchronously.
    kFailed,    // Load failed; status stored, budget refunded.
  };
  struct Slot {
    const AuditTask* task;
    SlotState state = SlotState::kPending;
    uint64_t bytes = 0;
    Status status = Status::Ok();
  };

  void ThreadMain();
  // Drops the highest-position kReady slot under mu_ (eviction included, so a cede/sync
  // reload of the same chunk can never race the drop). Caller guarantees non-empty.
  void DropReadySlotLocked();
  // DropReadySlotLocked + revocation accounting. Returns false if nothing is kReady.
  bool RevokeOneLocked(std::unique_lock<std::mutex>& lock);
  void BumpProgressLocked() { progress_gen_++; }

  PrefetchableLoader* const loader_;
  ChunkBudget* const budget_;
  const std::vector<const AuditTask*> order_;
  const size_t depth_;
  AuditTaskJournal* const journal_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;                         // Parallel to order_.
  std::unordered_map<size_t, size_t> by_order_;     // task.order -> slot index.
  std::vector<size_t> ready_;                       // Ascending slot indexes, kReady only.
  size_t outstanding_ = 0;                          // Slots in {kFetching, kReady}.
  uint64_t progress_gen_ = 0;  // Bumped on completion/adoption/revocation/gate release.
  bool stop_ = false;
  bool started_ = false;
  PrefetchStats stats_;
  std::thread thread_;
};

}  // namespace orochi

#endif  // SRC_STREAM_PREFETCH_H_
