#include "src/stream/reports_index.h"

#include <algorithm>
#include <utility>

#include "src/common/crc32c.h"
#include "src/objects/wire_format.h"
#include "src/obs/metrics.h"

namespace orochi {

namespace {

// The chunk budget only meters loader admissions; this gauge exposes the residency the
// budget cannot see — whole record payloads materialized while pass 1 indexes them.
obs::Gauge* Pass1TransientGauge() {
  static obs::Gauge* const g = obs::MetricsRegistry::Default()->GetGauge(
      "orochi_pass1_transient_peak_bytes",
      "largest record payload transiently resident during pass-1 reports indexing");
  return g;
}

}  // namespace

Status StreamReportsSet::AppendFile(const std::string& path, Env* env) {
  ReportsRecordReader reader;
  if (Status st = reader.Open(path, env); !st.ok()) {
    return st;
  }
  const uint32_t file = static_cast<uint32_t>(files_.size());
  // Decode into a per-file Reports first (validation identical to ReadReportsFile, object
  // ids local to this file), then fold it onto the merged skeleton with the remap
  // AppendReports applied.
  Reports file_reports;
  std::vector<std::vector<OpLogEntryLoc>> file_locs;
  ReportsDecodeState state;
  uint8_t type = 0;
  std::string payload;
  while (true) {
    Result<bool> more = reader.Next(&type, &payload);
    if (!more.ok()) {
      return Status::Error(more.error());
    }
    if (!more.value()) {
      break;
    }
    if (Status st = DecodeReportsRecordPayload(type, payload, path, &state, &file_reports);
        !st.ok()) {
      return st;
    }
    pass1_transient_peak_bytes_ =
        std::max<uint64_t>(pass1_transient_peak_bytes_, payload.size());
    if (type != wire::kReportsRecOpLog && type != wire::kReportsRecOpLogSegment) {
      continue;
    }
    // The decoder accepted the record, so the entry frames sit back-to-back after the
    // fixed prefix (12 bytes monolithic, 24 bytes segment); the spans must tile the
    // payload exactly as the decoded entries do. A segment record covers only the tail of
    // entries it just appended — earlier segments of the same object already shed theirs.
    uint32_t object = 0;
    size_t first_index = 0;  // Log index of the first entry this record covers.
    std::vector<OpLogEntrySpan> spans;
    if (type == wire::kReportsRecOpLog) {
      const unsigned char* p = reinterpret_cast<const unsigned char*>(payload.data());
      for (int i = 0; i < 4; i++) {
        object |= static_cast<uint32_t>(p[i]) << (8 * i);
      }
      spans = IndexOpLogEntries(payload);
    } else {
      OpLogSegmentHeader h;
      spans = IndexOpLogSegmentEntries(payload, &h);
      object = h.object;
      first_index = static_cast<size_t>(h.first_seqnum - 1);
    }
    file_locs.resize(file_reports.op_logs.size());
    std::vector<OpRecord>& log = file_reports.op_logs[object];
    if (first_index + spans.size() != log.size()) {
      return Status::Error("stream: op-log index drifted from the decoder in " + path);
    }
    std::vector<OpLogEntryLoc>& locs = file_locs[object];
    locs.reserve(log.size());
    for (const OpLogEntrySpan& span : spans) {
      locs.push_back({file, reader.last_payload_offset() + span.offset, span.bytes,
                      Crc32c(payload.data() + span.offset, span.bytes)});
    }
    // Shed the covered contents now that their locations are indexed, so at most one
    // record's contents are transiently resident during the pass.
    for (size_t i = first_index; i < log.size(); i++) {
      log[i].contents.clear();
      log[i].contents.shrink_to_fit();
    }
  }
  Pass1TransientGauge()->SetMax(static_cast<int64_t>(pass1_transient_peak_bytes_));
  file_locs.resize(file_reports.op_logs.size());

  ReportsMergeMap map;
  if (Status st = AppendReports(&skeleton_, file_reports, &map); !st.ok()) {
    // Merge-level errors (possible only past the first file) name the offending file so
    // shard-merge callers surface the same "path: reason" shape decode errors carry.
    return Status::Error(path + ": " + st.error());
  }
  locs_.resize(skeleton_.op_logs.size());
  for (size_t i = 0; i < file_locs.size(); i++) {
    std::vector<OpLogEntryLoc>& dst = locs_[map.object_remap[i]];
    for (const OpLogEntryLoc& loc : file_locs[i]) {
      dst.push_back(loc);
      total_log_payload_bytes_ += loc.bytes;
    }
  }
  files_.push_back(path);
  return Status::Ok();
}

Status StreamReportsSet::Absorb(StreamReportsSet&& other, const std::string& label) {
  ReportsMergeMap map;
  if (Status st = AppendReports(&skeleton_, other.skeleton_, &map); !st.ok()) {
    return Status::Error(label + ": " + st.error());
  }
  const uint32_t file_base = static_cast<uint32_t>(files_.size());
  for (std::string& path : other.files_) {
    files_.push_back(std::move(path));
  }
  locs_.resize(skeleton_.op_logs.size());
  for (size_t i = 0; i < other.locs_.size(); i++) {
    std::vector<OpLogEntryLoc>& dst = locs_[map.object_remap[i]];
    for (OpLogEntryLoc loc : other.locs_[i]) {
      loc.file += file_base;
      dst.push_back(loc);
    }
  }
  total_log_payload_bytes_ += other.total_log_payload_bytes_;
  pass1_transient_peak_bytes_ =
      std::max(pass1_transient_peak_bytes_, other.pass1_transient_peak_bytes_);
  other = StreamReportsSet();
  return Status::Ok();
}

Status SegmentedOpLogScanner::Scan(
    size_t object, const std::function<Status(const OpRecord&, uint64_t)>& fn) {
  io_failed_ = false;
  // Segments never exceed the budget (when one is set), so forward scans page within the
  // same ceiling re-execution honors; only a single entry larger than the whole budget
  // takes the oversized-chunk admission path.
  const uint64_t cap = budget_->max_bytes() > 0 && budget_->max_bytes() < kSegmentBytes
                           ? budget_->max_bytes()
                           : kSegmentBytes;
  const uint64_t n = set_->log_size(object);
  uint64_t seq = 1;
  while (seq <= n) {
    uint64_t count = 1;
    uint64_t bytes = set_->loc(object, seq).bytes;
    while (seq + count <= n) {
      uint64_t next = set_->loc(object, seq + count).bytes;
      if (bytes + next > cap) {
        break;
      }
      bytes += next;
      count++;
    }
    budget_->Acquire(bytes);
    loader_->OnChunkResident(bytes);
    Status load = loader_->Load(set_, object, seq, count);
    Status fn_status;
    if (load.ok()) {
      const std::vector<OpRecord>& log = set_->skeleton().op_logs[object];
      for (uint64_t i = 0; i < count && fn_status.ok(); i++) {
        fn_status = fn(log[static_cast<size_t>(seq - 1 + i)], seq + i);
      }
      loader_->Evict(set_, object, seq, count);
    }
    loader_->OnChunkEvicted(bytes);
    budget_->Release(bytes);
    if (!load.ok()) {
      io_failed_ = true;
      return load;
    }
    if (!fn_status.ok()) {
      return fn_status;
    }
    seq += count;
  }
  return Status::Ok();
}

}  // namespace orochi
