#include "src/stream/checkpoint.h"

#include <utility>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/hash.h"
#include "src/objects/stores.h"
#include "src/objects/wire_format.h"
#include "src/objects/wire_primitives.h"

namespace orochi {

namespace {

using wire_primitives::Cursor;
using wire_primitives::MakeCursor;
using wire_primitives::PutF64;
using wire_primitives::PutStr;
using wire_primitives::PutU32;
using wire_primitives::PutU64;

// Checkpoint-section record types.
constexpr uint8_t kMetaRecord = 1;   // u64 fingerprint.
constexpr uint8_t kChunkRecord = 2;  // One completed task (order + stats + outputs).

void EncodeChunkRecord(size_t order, const AuditTaskRecord& rec, std::string* out) {
  out->clear();
  PutU64(out, order);
  const AuditStats& s = rec.stats;
  PutF64(out, s.proc_op_reports_seconds);
  PutF64(out, s.db_redo_seconds);
  PutF64(out, s.reexec_seconds);
  PutF64(out, s.db_query_seconds);
  PutF64(out, s.other_seconds);
  PutU64(out, s.total_instructions);
  PutU64(out, s.multivalent_instructions);
  PutU64(out, s.num_groups);
  PutU64(out, s.groups_multi);
  PutU64(out, s.fallback_groups);
  PutU64(out, s.ops_checked);
  PutU64(out, s.db_selects_issued);
  PutU64(out, s.db_selects_deduped);
  PutU64(out, s.checkpoint_chunks_reused);
  PutU64(out, s.group_stats.size());
  for (const AuditStats::GroupStat& g : s.group_stats) {
    PutStr(out, g.script);
    PutU32(out, g.n);
    PutU64(out, g.length);
    PutF64(out, g.alpha);
  }
  PutU64(out, rec.outputs.size());
  for (const auto& [rid, body] : rec.outputs) {
    PutU64(out, rid);
    PutStr(out, body);
  }
}

bool DecodeChunkRecord(const std::string& payload, size_t* order, AuditTaskRecord* rec) {
  Cursor cur = MakeCursor(payload);
  uint64_t order64;
  if (!cur.TakeU64(&order64)) {
    return false;
  }
  *order = static_cast<size_t>(order64);
  AuditStats& s = rec->stats;
  if (!cur.TakeF64(&s.proc_op_reports_seconds) || !cur.TakeF64(&s.db_redo_seconds) ||
      !cur.TakeF64(&s.reexec_seconds) || !cur.TakeF64(&s.db_query_seconds) ||
      !cur.TakeF64(&s.other_seconds) || !cur.TakeU64(&s.total_instructions) ||
      !cur.TakeU64(&s.multivalent_instructions) || !cur.TakeU64(&s.num_groups) ||
      !cur.TakeU64(&s.groups_multi) || !cur.TakeU64(&s.fallback_groups) ||
      !cur.TakeU64(&s.ops_checked) || !cur.TakeU64(&s.db_selects_issued) ||
      !cur.TakeU64(&s.db_selects_deduped) || !cur.TakeU64(&s.checkpoint_chunks_reused)) {
    return false;
  }
  uint64_t num_groups;
  if (!cur.TakeU64(&num_groups) || !cur.CountFits(num_groups, 4 + 4 + 8 + 8)) {
    return false;
  }
  s.group_stats.resize(static_cast<size_t>(num_groups));
  for (AuditStats::GroupStat& g : s.group_stats) {
    if (!cur.TakeStr(&g.script) || !cur.TakeU32(&g.n) || !cur.TakeU64(&g.length) ||
        !cur.TakeF64(&g.alpha)) {
      return false;
    }
  }
  uint64_t num_outputs;
  if (!cur.TakeU64(&num_outputs) || !cur.CountFits(num_outputs, 8 + 4)) {
    return false;
  }
  rec->outputs.resize(static_cast<size_t>(num_outputs));
  for (auto& [rid, body] : rec->outputs) {
    uint64_t rid64;
    if (!cur.TakeU64(&rid64) || !cur.TakeStr(&body)) {
      return false;
    }
    rid = static_cast<RequestId>(rid64);
  }
  return cur.AtEnd();
}

// Best-effort full read of `path` into `out`. Any failure (absent file, read error)
// clears `out` — a checkpoint that cannot be read contributes nothing to the resume.
void ReadWholeFileBestEffort(Env* env, const std::string& path, std::string* out) {
  out->clear();
  Result<std::unique_ptr<ReadableFile>> file = env->OpenRead(path);
  if (!file.ok()) {
    return;
  }
  constexpr size_t kChunk = 1 << 18;
  std::vector<char> buf(kChunk);
  uint64_t offset = 0;
  for (;;) {
    Result<size_t> n = ReadUpToAt(file.value().get(), path, offset, kChunk, buf.data());
    if (!n.ok()) {
      out->clear();
      return;
    }
    if (n.value() == 0) {
      return;
    }
    out->append(buf.data(), n.value());
    offset += n.value();
  }
}

// Parses a prior journal's bytes: envelope + meta(fingerprint) + chunk records, stopping
// silently at the first torn or corrupt byte. Returns false (no records kept) when the
// envelope or fingerprint does not match — the file belongs to a different audit.
bool ParsePriorJournal(const std::string& data, uint64_t fingerprint,
                       std::unordered_map<size_t, AuditTaskRecord>* records) {
  if (data.size() < wire::kEnvelopeHeaderBytes ||
      data.compare(0, sizeof(wire::kMagic), wire::kMagic, sizeof(wire::kMagic)) != 0) {
    return false;
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; i++) {
    version |= static_cast<uint32_t>(static_cast<unsigned char>(data[8 + i])) << (8 * i);
  }
  if (version < 2 || version > wire::kFormatVersion ||
      static_cast<unsigned char>(data[12]) !=
          static_cast<unsigned char>(wire::Section::kCheckpoint)) {
    return false;
  }
  size_t pos = wire::kEnvelopeHeaderBytes;
  bool saw_meta = false;
  std::string payload;
  while (pos < data.size()) {
    uint8_t type;
    uint64_t len;
    uint32_t crc;
    if (!wire::ParseRecordFrameV2(data.data() + pos, data.size() - pos, &type, &len, &crc) ||
        len > data.size() - pos - wire::kRecordFrameBytesV2) {
      break;  // Torn tail: keep everything decoded so far.
    }
    payload.assign(data, pos + wire::kRecordFrameBytesV2, static_cast<size_t>(len));
    if (Crc32c(payload) != crc) {
      break;
    }
    pos += wire::kRecordFrameBytesV2 + static_cast<size_t>(len);
    if (!saw_meta) {
      Cursor cur = MakeCursor(payload);
      uint64_t fp;
      if (type != kMetaRecord || !cur.TakeU64(&fp) || !cur.AtEnd() || fp != fingerprint) {
        return false;  // Another audit's checkpoint: discard wholesale.
      }
      saw_meta = true;
      continue;
    }
    if (type != kChunkRecord) {
      break;
    }
    size_t order;
    AuditTaskRecord rec;
    if (!DecodeChunkRecord(payload, &order, &rec)) {
      break;
    }
    records->emplace(order, std::move(rec));
  }
  return saw_meta;
}

}  // namespace

uint64_t CheckpointFingerprint(const InitialState& initial, const AuditPlan& plan,
                               const AuditOptions& options) {
  uint64_t h = FnvHash(InitialStateFingerprint(initial));
  h = HashCombine(h, options.max_group_size);
  h = HashCombine(h, options.enable_query_dedup ? 1 : 0);
  h = HashCombine(h, plan.fail_order);
  h = HashCombine(h, FnvHash(plan.fail_reason));
  h = HashCombine(h, plan.tasks.size());
  for (const AuditTask& task : plan.tasks) {
    h = HashCombine(h, task.order);
    h = HashCombine(h, task.rids.size());
    for (RequestId rid : task.rids) {
      h = HashCombine(h, rid);
    }
  }
  return h;
}

Result<std::unique_ptr<CheckpointJournal>> CheckpointJournal::Open(Env* env,
                                                                   const std::string& path,
                                                                   uint64_t fingerprint) {
  using R = Result<std::unique_ptr<CheckpointJournal>>;
  env = ResolveEnv(env);
  std::unique_ptr<CheckpointJournal> journal(new CheckpointJournal(env, path));

  std::string prior;
  ReadWholeFileBestEffort(env, path, &prior);
  if (!prior.empty() && !ParsePriorJournal(prior, fingerprint, &journal->records_)) {
    journal->records_.clear();
  }
  journal->loaded_ = journal->records_.size();

  // Rewrite the journal fresh: envelope + meta + every surviving record. This truncates
  // any torn tail in place, so appends always extend a well-formed prefix.
  Result<std::unique_ptr<WritableFile>> out = env->OpenWrite(path);
  if (!out.ok()) {
    return R::Error("checkpoint: cannot open " + path + ": " + out.error());
  }
  journal->out_ = std::move(out).value();
  std::string buf = wire::EnvelopeHeader(wire::Section::kCheckpoint);
  std::string payload;
  PutU64(&payload, fingerprint);
  wire::AppendRecordFrame(&buf, kMetaRecord, payload);
  for (const auto& [order, rec] : journal->records_) {
    EncodeChunkRecord(order, rec, &payload);
    wire::AppendRecordFrame(&buf, kChunkRecord, payload);
  }
  if (Status st = journal->out_->Append(buf); !st.ok()) {
    return R::Error("checkpoint: cannot write " + path + ": " + st.error());
  }
  if (Status st = journal->out_->Sync(); !st.ok()) {
    return R::Error("checkpoint: cannot sync " + path + ": " + st.error());
  }
  return R(std::move(journal));
}

const AuditTaskRecord* CheckpointJournal::Lookup(size_t order) {
  auto it = records_.find(order);
  return it == records_.end() ? nullptr : &it->second;
}

void CheckpointJournal::Record(const AuditTask& task, const AuditTaskRecord& record) {
  std::string payload;
  EncodeChunkRecord(task.order, record, &payload);
  std::string framed;
  wire::AppendRecordFrame(&framed, kChunkRecord, payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (write_failed_ || out_ == nullptr) {
    return;
  }
  // Append + fsync so a completed chunk survives a kill. A failure only stops the
  // journal from growing — the audit's verdict never depends on journal writes.
  if (!out_->Append(framed).ok() || !out_->Sync().ok()) {
    write_failed_ = true;
  }
}

Status CheckpointJournal::RemoveFile() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) {
    out_->Close();
    out_.reset();
  }
  return env_->Remove(path_);
}

}  // namespace orochi
