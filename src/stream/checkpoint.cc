#include "src/stream/checkpoint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/hash.h"
#include "src/objects/stores.h"
#include "src/objects/wire_format.h"
#include "src/objects/wire_primitives.h"
#include "src/stream/reports_index.h"
#include "src/stream/trace_index.h"

namespace orochi {

namespace {

using wire_primitives::Cursor;
using wire_primitives::MakeCursor;
using wire_primitives::PutF64;
using wire_primitives::PutStr;
using wire_primitives::PutU32;
using wire_primitives::PutU64;

// Checkpoint-section record types.
constexpr uint8_t kMetaRecord = 1;     // u64 fingerprint.
constexpr uint8_t kChunkRecord = 2;    // One completed task (order + stats + outputs).
constexpr uint8_t kPrepareRecord = 3;  // u64 object: Prepare finished scanning its log.
constexpr uint8_t kCompareRecord = 4;  // u64 watermark: responses fully compared (pass 3).

void EncodeChunkRecord(size_t order, const AuditTaskRecord& rec, std::string* out) {
  out->clear();
  PutU64(out, order);
  const AuditStats& s = rec.stats;
  PutF64(out, s.proc_op_reports_seconds);
  PutF64(out, s.db_redo_seconds);
  PutF64(out, s.reexec_seconds);
  PutF64(out, s.db_query_seconds);
  PutF64(out, s.other_seconds);
  PutU64(out, s.total_instructions);
  PutU64(out, s.multivalent_instructions);
  PutU64(out, s.num_groups);
  PutU64(out, s.groups_multi);
  PutU64(out, s.fallback_groups);
  PutU64(out, s.ops_checked);
  PutU64(out, s.db_selects_issued);
  PutU64(out, s.db_selects_deduped);
  PutU64(out, s.checkpoint_chunks_reused);
  PutU64(out, s.group_stats.size());
  for (const AuditStats::GroupStat& g : s.group_stats) {
    PutStr(out, g.script);
    PutU32(out, g.n);
    PutU64(out, g.length);
    PutF64(out, g.alpha);
  }
  PutU64(out, rec.outputs.size());
  for (const auto& [rid, body] : rec.outputs) {
    PutU64(out, rid);
    PutStr(out, body);
  }
}

bool DecodeChunkRecord(const std::string& payload, size_t* order, AuditTaskRecord* rec) {
  Cursor cur = MakeCursor(payload);
  uint64_t order64;
  if (!cur.TakeU64(&order64)) {
    return false;
  }
  *order = static_cast<size_t>(order64);
  AuditStats& s = rec->stats;
  if (!cur.TakeF64(&s.proc_op_reports_seconds) || !cur.TakeF64(&s.db_redo_seconds) ||
      !cur.TakeF64(&s.reexec_seconds) || !cur.TakeF64(&s.db_query_seconds) ||
      !cur.TakeF64(&s.other_seconds) || !cur.TakeU64(&s.total_instructions) ||
      !cur.TakeU64(&s.multivalent_instructions) || !cur.TakeU64(&s.num_groups) ||
      !cur.TakeU64(&s.groups_multi) || !cur.TakeU64(&s.fallback_groups) ||
      !cur.TakeU64(&s.ops_checked) || !cur.TakeU64(&s.db_selects_issued) ||
      !cur.TakeU64(&s.db_selects_deduped) || !cur.TakeU64(&s.checkpoint_chunks_reused)) {
    return false;
  }
  uint64_t num_groups;
  if (!cur.TakeU64(&num_groups) || !cur.CountFits(num_groups, 4 + 4 + 8 + 8)) {
    return false;
  }
  s.group_stats.resize(static_cast<size_t>(num_groups));
  for (AuditStats::GroupStat& g : s.group_stats) {
    if (!cur.TakeStr(&g.script) || !cur.TakeU32(&g.n) || !cur.TakeU64(&g.length) ||
        !cur.TakeF64(&g.alpha)) {
      return false;
    }
  }
  uint64_t num_outputs;
  if (!cur.TakeU64(&num_outputs) || !cur.CountFits(num_outputs, 8 + 4)) {
    return false;
  }
  rec->outputs.resize(static_cast<size_t>(num_outputs));
  for (auto& [rid, body] : rec->outputs) {
    uint64_t rid64;
    if (!cur.TakeU64(&rid64) || !cur.TakeStr(&body)) {
      return false;
    }
    rid = static_cast<RequestId>(rid64);
  }
  return cur.AtEnd();
}

// Best-effort full read of `path` into `out`. Any failure (absent file, read error)
// clears `out` — a checkpoint that cannot be read contributes nothing to the resume.
void ReadWholeFileBestEffort(Env* env, const std::string& path, std::string* out) {
  out->clear();
  Result<std::unique_ptr<ReadableFile>> file = env->OpenRead(path);
  if (!file.ok()) {
    return;
  }
  constexpr size_t kChunk = 1 << 18;
  std::vector<char> buf(kChunk);
  uint64_t offset = 0;
  for (;;) {
    Result<size_t> n = ReadUpToAt(file.value().get(), path, offset, kChunk, buf.data());
    if (!n.ok()) {
      out->clear();
      return;
    }
    if (n.value() == 0) {
      return;
    }
    out->append(buf.data(), n.value());
    offset += n.value();
  }
}

// Parses a prior journal's bytes: envelope + meta(fingerprint) + progress records,
// stopping silently at the first torn or corrupt byte. Returns false (nothing kept) when
// the envelope or fingerprint does not match — the file belongs to a different audit.
bool ParsePriorJournal(const std::string& data, uint64_t fingerprint,
                       std::unordered_map<size_t, AuditTaskRecord>* records,
                       std::set<uint64_t>* prepare_scans, uint64_t* compare_watermark) {
  if (data.size() < wire::kEnvelopeHeaderBytes ||
      data.compare(0, sizeof(wire::kMagic), wire::kMagic, sizeof(wire::kMagic)) != 0) {
    return false;
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; i++) {
    version |= static_cast<uint32_t>(static_cast<unsigned char>(data[8 + i])) << (8 * i);
  }
  if (version < 2 || version > wire::kFormatVersion ||
      static_cast<unsigned char>(data[12]) !=
          static_cast<unsigned char>(wire::Section::kCheckpoint)) {
    return false;
  }
  size_t pos = wire::kEnvelopeHeaderBytes;
  bool saw_meta = false;
  std::string payload;
  while (pos < data.size()) {
    uint8_t type;
    uint64_t len;
    uint32_t crc;
    if (!wire::ParseRecordFrameV2(data.data() + pos, data.size() - pos, &type, &len, &crc) ||
        len > data.size() - pos - wire::kRecordFrameBytesV2) {
      break;  // Torn tail: keep everything decoded so far.
    }
    payload.assign(data, pos + wire::kRecordFrameBytesV2, static_cast<size_t>(len));
    if (Crc32c(payload) != crc) {
      break;
    }
    pos += wire::kRecordFrameBytesV2 + static_cast<size_t>(len);
    if (!saw_meta) {
      Cursor cur = MakeCursor(payload);
      uint64_t fp;
      if (type != kMetaRecord || !cur.TakeU64(&fp) || !cur.AtEnd() || fp != fingerprint) {
        return false;  // Another audit's checkpoint: discard wholesale.
      }
      saw_meta = true;
      continue;
    }
    if (type == kChunkRecord) {
      size_t order;
      AuditTaskRecord rec;
      if (!DecodeChunkRecord(payload, &order, &rec)) {
        break;
      }
      records->emplace(order, std::move(rec));
    } else if (type == kPrepareRecord) {
      Cursor cur = MakeCursor(payload);
      uint64_t object;
      if (!cur.TakeU64(&object) || !cur.AtEnd()) {
        break;
      }
      prepare_scans->insert(object);
    } else if (type == kCompareRecord) {
      Cursor cur = MakeCursor(payload);
      uint64_t watermark;
      if (!cur.TakeU64(&watermark) || !cur.AtEnd()) {
        break;
      }
      *compare_watermark = std::max(*compare_watermark, watermark);
    } else {
      break;  // Unknown record kind: treat like a torn tail.
    }
  }
  return saw_meta;
}

}  // namespace

uint64_t StreamEpochFingerprint(const InitialState& initial, const StreamTraceSet& traces,
                                const StreamReportsSet& reports,
                                const AuditOptions& options) {
  uint64_t h = FnvHash(InitialStateFingerprint(initial));
  h = HashCombine(h, options.max_group_size);
  h = HashCombine(h, options.enable_query_dedup ? 1 : 0);
  // Trace side: event structure plus each payload's pass-1 CRC and length, so two epochs
  // with identical skeletons but different request params or response bodies cannot
  // collide (the skeleton sheds those bytes; the CRC still binds them).
  h = HashCombine(h, traces.num_events());
  const Trace& trace = traces.skeleton();
  for (size_t i = 0; i < traces.num_events(); i++) {
    const TraceEvent& e = trace.events[i];
    h = HashCombine(h, static_cast<uint64_t>(e.kind));
    h = HashCombine(h, e.rid);
    h = HashCombine(h, FnvHash(e.script));
    h = HashCombine(h, traces.loc(i).crc);
    h = HashCombine(h, traces.loc(i).bytes);
  }
  // Reports side: the full skeleton plus each op-log entry frame's pass-1 CRC (binding
  // the shed contents bytes exactly as the trace CRCs bind payloads).
  const Reports& skel = reports.skeleton();
  h = HashCombine(h, skel.objects.size());
  for (const ObjectDesc& d : skel.objects) {
    h = HashCombine(h, static_cast<uint64_t>(d.kind));
    h = HashCombine(h, FnvHash(d.name));
  }
  for (size_t obj = 0; obj < skel.op_logs.size(); obj++) {
    const std::vector<OpRecord>& log = skel.op_logs[obj];
    h = HashCombine(h, log.size());
    for (size_t j = 0; j < log.size(); j++) {
      const OpRecord& op = log[j];
      h = HashCombine(h, op.rid);
      h = HashCombine(h, op.opnum);
      h = HashCombine(h, static_cast<uint64_t>(op.type));
      h = HashCombine(h, reports.loc(obj, j + 1).crc);
    }
  }
  h = HashCombine(h, skel.groups.size());
  for (const auto& [tag, rids] : skel.groups) {
    h = HashCombine(h, tag);
    h = HashCombine(h, rids.size());
    for (RequestId rid : rids) {
      h = HashCombine(h, rid);
    }
  }
  std::vector<std::pair<RequestId, uint32_t>> counts(skel.op_counts.begin(),
                                                     skel.op_counts.end());
  std::sort(counts.begin(), counts.end());
  h = HashCombine(h, counts.size());
  for (const auto& [rid, count] : counts) {
    h = HashCombine(h, rid);
    h = HashCombine(h, count);
  }
  std::vector<RequestId> nondet_rids;
  nondet_rids.reserve(skel.nondet.size());
  for (const auto& [rid, recs] : skel.nondet) {
    (void)recs;
    nondet_rids.push_back(rid);
  }
  std::sort(nondet_rids.begin(), nondet_rids.end());
  h = HashCombine(h, nondet_rids.size());
  for (RequestId rid : nondet_rids) {
    const std::vector<NondetRecord>& recs = skel.nondet.at(rid);
    h = HashCombine(h, rid);
    h = HashCombine(h, recs.size());
    for (const NondetRecord& r : recs) {
      h = HashCombine(h, FnvHash(r.name));
      h = HashCombine(h, FnvHash(r.value));
    }
  }
  return h;
}

Result<std::unique_ptr<CheckpointJournal>> CheckpointJournal::Open(Env* env,
                                                                   const std::string& path,
                                                                   uint64_t fingerprint) {
  using R = Result<std::unique_ptr<CheckpointJournal>>;
  env = ResolveEnv(env);
  std::unique_ptr<CheckpointJournal> journal(new CheckpointJournal(env, path));

  std::string prior;
  ReadWholeFileBestEffort(env, path, &prior);
  if (!prior.empty() &&
      !ParsePriorJournal(prior, fingerprint, &journal->records_,
                         &journal->prepare_loaded_, &journal->compare_loaded_)) {
    journal->records_.clear();
    journal->prepare_loaded_.clear();
    journal->compare_loaded_ = 0;
  }
  journal->loaded_ = journal->records_.size();
  journal->compare_appended_ = journal->compare_loaded_;

  // Rewrite the journal fresh: envelope + meta + every surviving record. This truncates
  // any torn tail in place, so appends always extend a well-formed prefix.
  Result<std::unique_ptr<WritableFile>> out = env->OpenWrite(path);
  if (!out.ok()) {
    return R::Error("checkpoint: cannot open " + path + ": " + out.error());
  }
  journal->out_ = std::move(out).value();
  std::string buf = wire::EnvelopeHeader(wire::Section::kCheckpoint);
  std::string payload;
  PutU64(&payload, fingerprint);
  wire::AppendRecordFrame(&buf, kMetaRecord, payload);
  for (const auto& [order, rec] : journal->records_) {
    EncodeChunkRecord(order, rec, &payload);
    wire::AppendRecordFrame(&buf, kChunkRecord, payload);
  }
  for (uint64_t object : journal->prepare_loaded_) {
    payload.clear();
    PutU64(&payload, object);
    wire::AppendRecordFrame(&buf, kPrepareRecord, payload);
  }
  if (journal->compare_loaded_ > 0) {
    payload.clear();
    PutU64(&payload, journal->compare_loaded_);
    wire::AppendRecordFrame(&buf, kCompareRecord, payload);
  }
  if (Status st = journal->out_->Append(buf); !st.ok()) {
    return R::Error("checkpoint: cannot write " + path + ": " + st.error());
  }
  if (Status st = journal->out_->Sync(); !st.ok()) {
    return R::Error("checkpoint: cannot sync " + path + ": " + st.error());
  }
  return R(std::move(journal));
}

const AuditTaskRecord* CheckpointJournal::Lookup(size_t order) {
  auto it = records_.find(order);
  return it == records_.end() ? nullptr : &it->second;
}

void CheckpointJournal::AppendFrame(uint8_t type, const std::string& payload) {
  std::string framed;
  wire::AppendRecordFrame(&framed, type, payload);
  if (write_failed_ || out_ == nullptr) {
    return;
  }
  // Append + fsync so retired work survives a kill. A failure only stops the journal
  // from growing — the audit's verdict never depends on journal writes.
  if (!out_->Append(framed).ok() || !out_->Sync().ok()) {
    write_failed_ = true;
  }
}

void CheckpointJournal::Record(const AuditTask& task, const AuditTaskRecord& record) {
  std::string payload;
  EncodeChunkRecord(task.order, record, &payload);
  std::lock_guard<std::mutex> lock(mu_);
  AppendFrame(kChunkRecord, payload);
}

void CheckpointJournal::RecordPrepareScan(uint64_t object) {
  if (PriorPrepareScan(object)) {
    return;  // Open already rewrote the prior run's record.
  }
  std::string payload;
  PutU64(&payload, object);
  std::lock_guard<std::mutex> lock(mu_);
  AppendFrame(kPrepareRecord, payload);
}

void CheckpointJournal::RecordCompareWatermark(uint64_t responses_compared) {
  std::lock_guard<std::mutex> lock(mu_);
  if (responses_compared <= compare_appended_) {
    return;  // The watermark on disk already covers this prefix.
  }
  std::string payload;
  PutU64(&payload, responses_compared);
  AppendFrame(kCompareRecord, payload);
  if (!write_failed_) {
    compare_appended_ = responses_compared;
  }
}

Status CheckpointJournal::RemoveFile() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) {
    out_->Close();
    out_.reset();
  }
  return env_->Remove(path_);
}

}  // namespace orochi
