// Resumable streamed audits: a sidecar wire file (Section::kCheckpoint) journaling audit
// progress in every phase — completed pass-2 chunk tasks (replayed on resume instead of
// re-executed), per-object Prepare scan watermarks, and the pass-3 compare watermark — so
// a verifier killed in *any* phase resumes without redoing retired work. Because the
// engine is deterministic and only successful work is journaled, a resumed run's verdict,
// rejection reason, and final state are bit-identical to an uninterrupted run at every
// thread count and memory budget.
//
// File layout: the standard 13-byte envelope, then one meta record carrying the epoch
// fingerprint, then progress records appended (and fsynced) as work retires. There is
// deliberately no end record — the file is an append journal whose tail may be torn by a
// crash; loading tolerates that by keeping every record before the first
// malformed/CRC-failed byte and discarding the rest. A fingerprint mismatch (different
// epoch content, different audit-relevant options) discards the whole file, so a stale
// checkpoint can never smuggle another epoch's outputs into this one.
#ifndef SRC_STREAM_CHECKPOINT_H_
#define SRC_STREAM_CHECKPOINT_H_

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "src/common/io_env.h"
#include "src/core/audit_plan.h"

namespace orochi {

class StreamTraceSet;
class StreamReportsSet;

// Identity of one (epoch content, audit-options) combination, computed from the pass-1
// skeletons BEFORE Prepare so the journal covers every later phase: initial-state
// fingerprint, every trace event's kind/rid/script plus its payload CRC and length,
// the reports skeleton in full (objects, per-entry rid/opnum/type plus entry-frame CRCs,
// groups, op counts, nondet records), and the options that change what the audit computes
// (max_group_size, enable_query_dedup). Binding payload CRCs is what makes replay sound:
// both runs' pass 1 read the spill files end to end, so a file that changed between runs
// cannot fingerprint-match. The plan needs no separate binding — it is a deterministic
// function of the skeletons and options, so task orders stay stable across runs.
// Deliberately NOT hashed: thread count, memory budget, io_env, checkpoint_path — those
// change scheduling, never the verdict, and a checkpoint must survive a resume under a
// different thread count or budget.
uint64_t StreamEpochFingerprint(const InitialState& initial, const StreamTraceSet& traces,
                                const StreamReportsSet& reports,
                                const AuditOptions& options);

class CheckpointJournal : public AuditTaskJournal {
 public:
  // Opens (or creates) the journal at `path`. An existing file with a matching
  // fingerprint contributes its intact records for replay; a missing, torn-at-the-head,
  // corrupt, or fingerprint-mismatched file contributes nothing. Either way the file is
  // rewritten fresh (envelope + meta + surviving records) and held open for appends —
  // only a failure to write that fresh journal is an error, because it means the
  // checkpoint path itself is unusable.
  static Result<std::unique_ptr<CheckpointJournal>> Open(Env* env, const std::string& path,
                                                         uint64_t fingerprint);
  ~CheckpointJournal() override = default;

  const AuditTaskRecord* Lookup(size_t order) override;
  // Appends + fsyncs one record. Best-effort: a write failure poisons further appends
  // (the journal stops growing) but never the audit.
  void Record(const AuditTask& task, const AuditTaskRecord& record) override;

  // --- Prepare-phase watermarks: per-object versioned-store scan progress ---
  // The store builds themselves are in-memory and must rerun on resume, so these are
  // progress markers (surfaced as AuditStats::prepare_watermarks_reused), journaled so a
  // kill mid-Prepare leaves a fingerprint-bound record of how far the build got.
  // True when a prior run journaled a completed scan of `object`.
  bool PriorPrepareScan(uint64_t object) const { return prepare_loaded_.count(object) > 0; }
  // Appends a scan-completed record for `object` (no-op if a prior run already has it).
  void RecordPrepareScan(uint64_t object);
  size_t resumable_prepare_scans() const { return prepare_loaded_.size(); }

  // --- Pass-3 compare watermark: responses fully compared, in trace order ---
  // A resumed run skips re-comparing the first `prior_compare_watermark()` responses:
  // sound because the fingerprint binds every response payload's CRC, and a surviving
  // journal means the prior run reached no verdict — all compared responses matched.
  uint64_t prior_compare_watermark() const { return compare_loaded_; }
  // Appends the watermark (monotone; appends only when it advances past what is on disk).
  void RecordCompareWatermark(uint64_t responses_compared);

  // Closes the append handle and deletes the journal file. Called once a verdict
  // (accept or reject) is reached; an I/O-failed audit keeps the file for resume.
  Status RemoveFile();

  // Records loaded from a prior run, i.e. the number of tasks a resume can skip.
  size_t resumable_tasks() const { return loaded_; }

 private:
  CheckpointJournal(Env* env, std::string path) : env_(env), path_(std::move(path)) {}

  void AppendFrame(uint8_t type, const std::string& payload);

  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> out_;
  std::mutex mu_;  // Guards out_, write_failed_, compare_appended_; the *_loaded_ state
                   // and records_ are frozen after Open.
  std::unordered_map<size_t, AuditTaskRecord> records_;
  std::set<uint64_t> prepare_loaded_;
  uint64_t compare_loaded_ = 0;
  uint64_t compare_appended_ = 0;  // Highest watermark on disk (loaded or appended).
  size_t loaded_ = 0;
  bool write_failed_ = false;
};

}  // namespace orochi

#endif  // SRC_STREAM_CHECKPOINT_H_
