// Resumable streamed audits: a sidecar wire file (Section::kCheckpoint) journaling every
// pass-2 chunk task that retired successfully, so a verifier killed mid-audit resumes by
// replaying those contributions instead of re-executing them. Because the engine is
// deterministic and only successful tasks are journaled, a resumed run's verdict,
// rejection reason, and final state are bit-identical to an uninterrupted run at every
// thread count and memory budget.
//
// File layout: the standard 13-byte envelope, then one meta record carrying the plan
// fingerprint, then one record per completed task, appended (and fsynced) as tasks
// retire. There is deliberately no end record — the file is an append journal whose tail
// may be torn by a crash; loading tolerates that by keeping every record before the first
// malformed/CRC-failed byte and discarding the rest. A fingerprint mismatch (different
// epoch, different plan, different audit-relevant options) discards the whole file, so a
// stale checkpoint can never smuggle another epoch's outputs into this one.
#ifndef SRC_STREAM_CHECKPOINT_H_
#define SRC_STREAM_CHECKPOINT_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/io_env.h"
#include "src/core/audit_plan.h"

namespace orochi {

// Identity of one (epoch, plan, audit-options) combination: initial-state fingerprint,
// every task's walk order and rid list, the plan's validation failure, and the options
// that change what re-execution computes (max_group_size, enable_query_dedup).
// Deliberately NOT hashed: thread count, memory budget, io_env, checkpoint_path — those
// change scheduling, never the verdict, and a checkpoint must survive a resume under a
// different thread count or budget.
uint64_t CheckpointFingerprint(const InitialState& initial, const AuditPlan& plan,
                               const AuditOptions& options);

class CheckpointJournal : public AuditTaskJournal {
 public:
  // Opens (or creates) the journal at `path`. An existing file with a matching
  // fingerprint contributes its intact records for replay; a missing, torn-at-the-head,
  // corrupt, or fingerprint-mismatched file contributes nothing. Either way the file is
  // rewritten fresh (envelope + meta + surviving records) and held open for appends —
  // only a failure to write that fresh journal is an error, because it means the
  // checkpoint path itself is unusable.
  static Result<std::unique_ptr<CheckpointJournal>> Open(Env* env, const std::string& path,
                                                         uint64_t fingerprint);
  ~CheckpointJournal() override = default;

  const AuditTaskRecord* Lookup(size_t order) override;
  // Appends + fsyncs one record. Best-effort: a write failure poisons further appends
  // (the journal stops growing) but never the audit.
  void Record(const AuditTask& task, const AuditTaskRecord& record) override;

  // Closes the append handle and deletes the journal file. Called once a verdict
  // (accept or reject) is reached; an I/O-failed audit keeps the file for resume.
  Status RemoveFile();

  // Records loaded from a prior run, i.e. the number of tasks a resume can skip.
  size_t resumable_tasks() const { return loaded_; }

 private:
  CheckpointJournal(Env* env, std::string path) : env_(env), path_(std::move(path)) {}

  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> out_;
  std::mutex mu_;  // Guards out_ and write_failed_; records_ is frozen after Open.
  std::unordered_map<size_t, AuditTaskRecord> records_;
  size_t loaded_ = 0;
  bool write_failed_ = false;
};

}  // namespace orochi

#endif  // SRC_STREAM_CHECKPOINT_H_
