#include "src/stream/shard_merge.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/common/work_steal_pool.h"
#include "src/objects/wire_format.h"
#include "src/obs/trace.h"

namespace orochi {

namespace {

// The stamped shard id of a trace spill file: streams at most one record (the shard-info
// header, when present, precedes every event). An empty or shard-info-only file is fine.
Result<uint32_t> PeekTraceShardId(const std::string& path, Env* env) {
  TraceReader reader;
  if (Status st = reader.Open(path, env); !st.ok()) {
    return Result<uint32_t>::Error(st.error());
  }
  TraceEvent event;
  Result<bool> more = reader.Next(&event);
  if (!more.ok()) {
    return Result<uint32_t>::Error(more.error());
  }
  return reader.shard_id();
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string Resolve(const std::string& dir, const std::string& file) {
  if (!file.empty() && file[0] == '/') {
    return file;
  }
  return dir + "/" + file;
}

}  // namespace

Result<MergedShards> MergeShards(const std::vector<ShardEpochFiles>& shards,
                                 const std::vector<uint32_t>& expected_ids, Env* env,
                                 size_t num_threads) {
  using R = Result<MergedShards>;
  if (shards.empty()) {
    return R::Error("shard merge: no shards given");
  }
  if (!expected_ids.empty() && expected_ids.size() != shards.size()) {
    return R::Error("shard merge: expected-id list does not match the shard list");
  }

  // Resolve each shard's effective id (stamped id, else the manifest's claim) and fix the
  // merge order: ascending id, argument position breaking ties. Sorting before any heavy
  // read keeps the merged epoch independent of the order the caller listed the files in.
  struct Entry {
    size_t pos;
    uint32_t id;
  };
  std::vector<Entry> order(shards.size());
  for (size_t i = 0; i < shards.size(); i++) {
    Result<uint32_t> stamped = PeekTraceShardId(shards[i].trace_path, env);
    if (!stamped.ok()) {
      return R::Error("shard merge: " + stamped.error());
    }
    uint32_t id = stamped.value();
    if (!expected_ids.empty()) {
      if (id != 0 && expected_ids[i] != id) {
        return R::Error("shard merge: " + shards[i].trace_path + " is stamped shard " +
                        std::to_string(id) + " but the manifest claims shard " +
                        std::to_string(expected_ids[i]));
      }
      id = expected_ids[i];
    }
    order[i] = {i, id};
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Entry& a, const Entry& b) { return a.id < b.id; });
  for (size_t i = 1; i < order.size(); i++) {
    if (order[i].id != 0 && order[i].id == order[i - 1].id) {
      return R::Error("shard merge: shard id " + std::to_string(order[i].id) +
                      " appears twice");
    }
  }

  // Pass 1 per shard, in parallel: each worker streams one shard's pair into its own
  // skeleton set. Nothing is shared across workers, so the only synchronization is the
  // pool's own join; determinism comes from the sequential fold below, which absorbs in
  // sorted merge order regardless of which worker finished first.
  struct ShardLoad {
    StreamTraceSet traces;
    StreamReportsSet reports;
    std::string error;  // Nonempty = this shard failed to stream.
  };
  std::vector<ShardLoad> loads(order.size());
  {
    std::vector<size_t> tasks(order.size());
    for (size_t i = 0; i < tasks.size(); i++) {
      tasks[i] = i;
    }
    WorkStealPool pool(num_threads < 1 ? 1 : num_threads);
    pool.Run(tasks, [&](size_t i) {
      // One pass-1 span per shard build: these overlap on the pool, so the phase's span
      // count is the shard count and its seconds are cumulative worker time.
      obs::TraceSpan span(nullptr, obs::Phase::kPass1Skeleton);
      const ShardEpochFiles& shard = shards[order[i].pos];
      ShardLoad& load = loads[i];
      Result<uint32_t> appended = load.traces.AppendFile(shard.trace_path, env);
      if (!appended.ok()) {
        load.error = appended.error();
        return;
      }
      if (Status st = load.reports.AppendFile(shard.reports_path, env); !st.ok()) {
        load.error = st.error();
      }
    });
  }

  MergedShards out;
  std::unordered_set<RequestId> prior_rids;
  for (size_t i = 0; i < order.size(); i++) {
    const Entry& e = order[i];
    const ShardEpochFiles& shard = shards[e.pos];
    ShardLoad& load = loads[i];
    if (!load.error.empty()) {
      // Quarantine: name the shard and both of its files, so the operator knows exactly
      // which collector's spill to restore — the other shards streamed clean.
      return R::Error("shard merge: quarantined shard " + std::to_string(e.id) +
                      " (trace " + shard.trace_path + ", reports " + shard.reports_path +
                      "): " + load.error);
    }
    // Rid-disjointness across shard traces. (Duplicates *within* one shard stay for the
    // audit's balanced-trace check to reject, exactly as the unsharded path would.)
    std::unordered_set<RequestId> shard_rids;
    for (const TraceEvent& event : load.traces.skeleton().events) {
      if (event.kind != TraceEvent::Kind::kRequest) {
        continue;
      }
      if (prior_rids.count(event.rid) > 0) {
        return R::Error("shard merge: rid " + std::to_string(event.rid) +
                        " appears in more than one shard's trace");
      }
      shard_rids.insert(event.rid);
    }
    prior_rids.insert(shard_rids.begin(), shard_rids.end());
    out.traces.Absorb(std::move(load.traces));

    // Merge errors (rid overlap with an earlier shard's reports) come back
    // "path: reason" from the index itself, same as the sequential stream would report.
    if (Status st = out.reports.Absorb(std::move(load.reports), shard.reports_path);
        !st.ok()) {
      return R::Error("shard merge: " + st.error());
    }
    out.shard_ids.push_back(e.id);
  }
  return out;
}

Result<MergedShards> MergeShardsFromManifest(const std::string& manifest_path, Env* env,
                                             size_t num_threads) {
  Result<ShardManifest> manifest = ReadShardManifestFile(manifest_path, env);
  if (!manifest.ok()) {
    return Result<MergedShards>::Error(manifest.error());
  }
  const std::string dir = DirOf(manifest_path);
  std::vector<ShardEpochFiles> shards;
  std::vector<uint32_t> ids;
  shards.reserve(manifest.value().shards.size());
  for (const ShardManifestEntry& entry : manifest.value().shards) {
    shards.push_back({Resolve(dir, entry.trace_file), Resolve(dir, entry.reports_file)});
    ids.push_back(entry.shard_id);
  }
  return MergeShards(shards, ids, env, num_threads);
}

}  // namespace orochi
