// Versioned binary wire format decoupling the collector/executor from the auditor
// (paper §2, §4.5 deployment model): the trusted collector spills the trace per epoch,
// the executor spills its reports, and the verifier later audits the files in a separate
// process via AuditSession. Three section kinds share one envelope:
//
//   header:  8-byte magic "OROCHIWF", u32 format version (little-endian), u8 section kind
//   records: u8 record type, u64 payload length, payload bytes
//   footer:  the end record (type 0, length 0)
//
// All integers are little-endian; strings are u32 length + raw bytes; wscript Values ride
// as their canonical Serialize() form. A file is rejected (Status/Result error, never a
// crash) on bad magic, unsupported version, wrong section kind, truncation, or malformed
// payloads — report and state files cross a trust boundary, so readers parse defensively.
//
// The same encoders back the exact byte accounting (`TraceWireBytes`, `ReportsWireBytes`,
// `InitialStateWireBytes`) used by the Figure 8 overhead columns, so reported sizes equal
// the bytes a spill file actually occupies.
#ifndef SRC_OBJECTS_WIRE_FORMAT_H_
#define SRC_OBJECTS_WIRE_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/result.h"
#include "src/objects/reports.h"
#include "src/objects/stores.h"
#include "src/objects/trace.h"

namespace orochi {

namespace wire {

inline constexpr char kMagic[8] = {'O', 'R', 'O', 'C', 'H', 'I', 'W', 'F'};
inline constexpr uint32_t kFormatVersion = 1;

enum class Section : uint8_t { kTrace = 1, kReports = 2, kState = 3 };

// Record type 0 with an empty payload terminates every section.
inline constexpr uint8_t kEndRecord = 0;

}  // namespace wire

// --- Trace files ---
// One record per TraceEvent, in collector order, so the collector can stream events to
// disk as an epoch closes without materializing a second copy.

class TraceWriter {
 public:
  TraceWriter() = default;
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  Status Open(const std::string& path);
  Status Append(const TraceEvent& event);
  // Writes the end record and closes; the file is valid only after Finish succeeds.
  Status Finish();

 private:
  std::FILE* file_ = nullptr;
  std::string scratch_;
};

class TraceReader {
 public:
  TraceReader() = default;
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  Status Open(const std::string& path);
  // True: *event holds the next trace event. False: clean end of section (and on any
  // further calls). Error: corrupt/truncated file (sticky across calls).
  Result<bool> Next(TraceEvent* event);

 private:
  std::FILE* file_ = nullptr;
  std::string scratch_;
  bool done_ = false;
  std::string error_;  // Nonempty once a read has failed.
};

Status WriteTraceFile(const std::string& path, const Trace& trace);
Result<Trace> ReadTraceFile(const std::string& path);

// --- Reports files ---
// Section layout: object-table records (in object-id order), one op-log record per
// non-empty log, group records, one op-counts record, nondet records (sorted by rid so the
// encoding is canonical).

class ReportsWriter {
 public:
  static Status WriteFile(const std::string& path, const Reports& reports);
};

class ReportsReader {
 public:
  static Result<Reports> ReadFile(const std::string& path);
};

inline Status WriteReportsFile(const std::string& path, const Reports& reports) {
  return ReportsWriter::WriteFile(path, reports);
}
inline Result<Reports> ReadReportsFile(const std::string& path) {
  return ReportsReader::ReadFile(path);
}

// --- InitialState snapshot files ---
// Registers, KV contents, and every database table (schema + rows), enough to reopen an
// AuditSession in a fresh process with the state a previous epoch's audit accepted.

Status WriteInitialStateFile(const std::string& path, const InitialState& state);
Result<InitialState> ReadInitialStateFile(const std::string& path);

// --- Exact wire sizes ---
// The byte count of the file the corresponding writer would produce (header and end
// record included). `nondet_only` prices a reports file carrying only the nondeterminism
// records — the paper's baseline is charged for exactly that advice (§5.1).

size_t TraceWireBytes(const Trace& trace);
size_t ReportsWireBytes(const Reports& reports, bool nondet_only = false);
size_t InitialStateWireBytes(const InitialState& state);

}  // namespace orochi

#endif  // SRC_OBJECTS_WIRE_FORMAT_H_
