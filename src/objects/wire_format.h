// Versioned binary wire format decoupling the collector/executor from the auditor
// (paper §2, §4.5 deployment model): the trusted collector spills the trace per epoch,
// the executor spills its reports, and the verifier later audits the files in a separate
// process via AuditSession. Three section kinds share one envelope:
//
//   header:  8-byte magic "OROCHIWF", u32 format version (little-endian), u8 section kind
//   records: u8 record type, u64 payload length, payload bytes
//   footer:  the end record (type 0, length 0)
//
// All integers are little-endian; strings are u32 length + raw bytes; wscript Values ride
// as their canonical Serialize() form. A file is rejected (Status/Result error, never a
// crash) on bad magic, unsupported version, wrong section kind, truncation, or malformed
// payloads — report and state files cross a trust boundary, so readers parse defensively.
//
// The same encoders back the exact byte accounting (`TraceWireBytes`, `ReportsWireBytes`,
// `InitialStateWireBytes`) used by the Figure 8 overhead columns, so reported sizes equal
// the bytes a spill file actually occupies.
#ifndef SRC_OBJECTS_WIRE_FORMAT_H_
#define SRC_OBJECTS_WIRE_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/objects/reports.h"
#include "src/objects/stores.h"
#include "src/objects/trace.h"

namespace orochi {

namespace wire {

inline constexpr char kMagic[8] = {'O', 'R', 'O', 'C', 'H', 'I', 'W', 'F'};
inline constexpr uint32_t kFormatVersion = 1;

enum class Section : uint8_t { kTrace = 1, kReports = 2, kState = 3, kManifest = 4 };

// Record type 0 with an empty payload terminates every section.
inline constexpr uint8_t kEndRecord = 0;

// Trace-section record types, public because the out-of-core audit re-reads individual
// records by (offset, length, type) long after the streaming pass that indexed them.
inline constexpr uint8_t kTraceRecRequest = 1;
inline constexpr uint8_t kTraceRecResponse = 2;
// In-section header carrying the collector's shard id. Emitted (by sharded collectors)
// as the first record of the section; readers reject it anywhere else, and reject a
// second one — an in-section header is positional, like the envelope header itself.
inline constexpr uint8_t kTraceRecShardInfo = 3;

// Reports-section record types, public because the out-of-core audit re-reads slices of
// individual op-log records by (offset, length) long after the streaming pass that
// indexed them (src/stream/reports_index.h).
inline constexpr uint8_t kReportsRecObject = 1;
inline constexpr uint8_t kReportsRecOpLog = 2;
inline constexpr uint8_t kReportsRecGroup = 3;
inline constexpr uint8_t kReportsRecOpCounts = 4;
inline constexpr uint8_t kReportsRecNondet = 5;

}  // namespace wire

// --- Trace files ---
// One record per TraceEvent, in collector order, so the collector can stream events to
// disk as an epoch closes without materializing a second copy.

class TraceWriter {
 public:
  TraceWriter() = default;
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // A nonzero shard_id stamps the file with a leading shard-info record, so a verifier
  // merging spill files from many collectors can identify and order the shards. Zero
  // (the default) writes the classic single-collector layout, byte-identical to before.
  Status Open(const std::string& path, uint32_t shard_id = 0);
  Status Append(const TraceEvent& event);
  // Writes the end record and closes; the file is valid only after Finish succeeds.
  Status Finish();

 private:
  std::FILE* file_ = nullptr;
  std::string scratch_;
};

class TraceReader {
 public:
  TraceReader() = default;
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  Status Open(const std::string& path);
  // True: *event holds the next trace event. False: clean end of section (and on any
  // further calls). Error: corrupt/truncated file (sticky across calls). A shard-info
  // record is consumed transparently (see shard_id()); it must be the first record of the
  // section and must not repeat — a duplicate or out-of-order in-section header rejects.
  Result<bool> Next(TraceEvent* event);

  // Shard id from the file's shard-info record; 0 until one is read (unsharded files
  // never carry one).
  uint32_t shard_id() const { return shard_id_; }

  // Location of the record the last successful Next() returned, for offset indexes built
  // by the out-of-core audit: the file offset of the record's payload (just past the
  // 9-byte frame), the payload's byte length, and its wire record type.
  uint64_t last_payload_offset() const { return last_payload_offset_; }
  uint64_t last_payload_bytes() const { return last_payload_bytes_; }
  uint8_t last_record_type() const { return last_record_type_; }

 private:
  std::FILE* file_ = nullptr;
  std::string scratch_;
  bool done_ = false;
  std::string error_;  // Nonempty once a read has failed.
  uint64_t pos_ = 0;   // File offset of the next record frame.
  uint64_t records_seen_ = 0;
  bool saw_shard_info_ = false;
  uint32_t shard_id_ = 0;
  uint64_t last_payload_offset_ = 0;
  uint64_t last_payload_bytes_ = 0;
  uint8_t last_record_type_ = 0;
};

Status WriteTraceFile(const std::string& path, const Trace& trace, uint32_t shard_id = 0);
Result<Trace> ReadTraceFile(const std::string& path);

// Decodes one trace record payload (wire::kTraceRecRequest / kTraceRecResponse) exactly as
// TraceReader::Next would. The out-of-core audit uses this to materialize a single event
// from a point read at an offset recorded during the streaming pass.
Result<TraceEvent> DecodeTraceEventPayload(uint8_t record_type, const std::string& payload);

// --- Reports files ---
// Section layout: object-table records (in object-id order), one op-log record per
// non-empty log, group records, one op-counts record, nondet records (sorted by rid so the
// encoding is canonical).

class ReportsWriter {
 public:
  static Status WriteFile(const std::string& path, const Reports& reports);
};

class ReportsReader {
 public:
  static Result<Reports> ReadFile(const std::string& path);
};

// Streaming reports-section reader mirroring TraceReader: yields raw records together
// with their payload byte locations, so the out-of-core audit can build per-object
// op-log offset indexes during one forward pass and point-read entry slices later.
class ReportsRecordReader {
 public:
  ReportsRecordReader() = default;
  ~ReportsRecordReader();
  ReportsRecordReader(const ReportsRecordReader&) = delete;
  ReportsRecordReader& operator=(const ReportsRecordReader&) = delete;

  Status Open(const std::string& path);
  // True: *type/*payload hold the next record. False: clean end of section (and on any
  // further calls). Error: corrupt/truncated file (sticky across calls).
  Result<bool> Next(uint8_t* type, std::string* payload);

  // Location of the record the last successful Next() returned: the file offset of the
  // record's payload (just past the 9-byte frame) and its byte length.
  uint64_t last_payload_offset() const { return last_payload_offset_; }
  uint64_t last_payload_bytes() const { return last_payload_bytes_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool done_ = false;
  std::string error_;  // Nonempty once a read has failed.
  uint64_t pos_ = 0;   // File offset of the next record frame.
  uint64_t last_payload_offset_ = 0;
  uint64_t last_payload_bytes_ = 0;
};

// Cross-record validation state for one reports read: op-counts must occur at most once,
// and object records form an in-section header block (all before the first non-object
// record, no duplicate descriptor). Public so the in-memory ReadFile and the streaming
// index decode through the exact same code — one validator, identical error text.
struct ReportsDecodeState {
  bool saw_op_counts = false;
  bool saw_non_object = false;
  std::set<std::pair<uint8_t, std::string>> declared;
};

// Decodes one reports record payload into *out exactly as ReadReportsFile would.
Status DecodeReportsRecordPayload(uint8_t type, const std::string& payload,
                                  const std::string& path, ReportsDecodeState* state,
                                  Reports* out);

// Byte span of one op-log entry inside an op-log record payload, relative to the payload
// start: the entry's frame (rid + opnum + type + length-prefixed contents) begins at
// `offset` and spans `bytes`. Valid only for a payload DecodeReportsRecordPayload
// accepted; the spans of consecutive entries are contiguous.
struct OpLogEntrySpan {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

// Walks a validated op-log record payload and returns each entry's span, in log order.
std::vector<OpLogEntrySpan> IndexOpLogEntries(const std::string& payload);

// Decodes one op-log entry frame (a single OpLogEntrySpan's bytes) exactly as the reports
// reader would. The out-of-core audit uses this to materialize an entry from a point read
// at an offset recorded during the streaming pass.
Status DecodeOpLogEntry(const char* data, size_t size, OpRecord* out);

inline Status WriteReportsFile(const std::string& path, const Reports& reports) {
  return ReportsWriter::WriteFile(path, reports);
}
inline Result<Reports> ReadReportsFile(const std::string& path) {
  return ReportsReader::ReadFile(path);
}

// --- Shard manifest files ---
// A tiny wire-format section (kind 4) naming the spill-file pair each collector shard
// produced for one epoch, so a single verifier can audit many front ends:
// `AuditSession::FeedShardedEpoch(manifest_path)` merge-joins the listed pairs into one
// logical epoch. File paths are stored as written (typically relative to the manifest's
// own directory) and resolved by the reader's caller. Shard ids must be unique within a
// manifest; the optional epoch record, when present, must precede the shard entries —
// the same in-section header discipline the trace shard-info record follows.

struct ShardManifestEntry {
  uint32_t shard_id = 0;
  std::string trace_file;
  std::string reports_file;
};

struct ShardManifest {
  uint64_t epoch = 0;
  std::vector<ShardManifestEntry> shards;
};

Status WriteShardManifestFile(const std::string& path, const ShardManifest& manifest);
Result<ShardManifest> ReadShardManifestFile(const std::string& path);

// --- InitialState snapshot files ---
// Registers, KV contents, and every database table (schema + rows), enough to reopen an
// AuditSession in a fresh process with the state a previous epoch's audit accepted.

Status WriteInitialStateFile(const std::string& path, const InitialState& state);
Result<InitialState> ReadInitialStateFile(const std::string& path);

// --- Exact wire sizes ---
// The byte count of the file the corresponding writer would produce (header and end
// record included). `nondet_only` prices a reports file carrying only the nondeterminism
// records — the paper's baseline is charged for exactly that advice (§5.1).

size_t TraceWireBytes(const Trace& trace);
size_t ReportsWireBytes(const Reports& reports, bool nondet_only = false);
size_t InitialStateWireBytes(const InitialState& state);

}  // namespace orochi

#endif  // SRC_OBJECTS_WIRE_FORMAT_H_
