// Versioned binary wire format decoupling the collector/executor from the auditor
// (paper §2, §4.5 deployment model): the trusted collector spills the trace per epoch,
// the executor spills its reports, and the verifier later audits the files in a separate
// process via AuditSession. The section kinds share one envelope:
//
//   header:  8-byte magic "OROCHIWF", u32 format version (little-endian), u8 section kind
//   records: v2: u8 record type, u64 payload length, u32 CRC32C(payload), payload bytes
//            v1: u8 record type, u64 payload length, payload bytes
//   footer:  the end record (type 0). In v2 it carries a 16-byte CRC-protected payload —
//            u64 record count (excluding the end record) and the u64 byte offset of the
//            end record's own frame — so a reader proves it saw the complete section.
//            In v1 the end record is empty.
//
// Writers emit v3; readers accept v1 through v3, so pre-existing spill files stay
// readable. v3 adds the segmented op-log record (reports sections only): an object whose
// encoded log exceeds kMaxOpLogSegmentBytes is split across several
// (object, segment_seq, entry_range) records instead of one monolithic record, so a
// streaming pass never transiently materializes more than one segment. Logs at or under
// the cap still encode as the classic monolithic record — byte-identical to what a v2
// writer produced. All writes are crash-safe: temp file + fsync + rename-into-place, so a
// reader only ever observes a previous complete file or the new complete file. All file
// I/O goes through a pluggable Env (src/common/io_env.h); nullptr means Env::Default().
//
// All integers are little-endian; strings are u32 length + raw bytes; wscript Values ride
// as their canonical Serialize() form. A file is rejected (Status/Result error, never a
// crash) on bad magic, unsupported version, wrong section kind, truncation, checksum
// mismatch, or malformed payloads — report and state files cross a trust boundary, so
// readers parse defensively, and v2 errors localize corruption to an exact record with
// file and byte-offset context.
//
// The same encoders back the exact byte accounting (`TraceWireBytes`, `ReportsWireBytes`,
// `InitialStateWireBytes`) used by the Figure 8 overhead columns, so reported sizes equal
// the bytes a spill file actually occupies.
#ifndef SRC_OBJECTS_WIRE_FORMAT_H_
#define SRC_OBJECTS_WIRE_FORMAT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/io_env.h"
#include "src/common/result.h"
#include "src/objects/reports.h"
#include "src/objects/stores.h"
#include "src/objects/trace.h"

namespace orochi {

namespace wire {

inline constexpr char kMagic[8] = {'O', 'R', 'O', 'C', 'H', 'I', 'W', 'F'};
// What writers emit / the newest version readers accept.
// v1: no per-record CRC, empty end record. v2: CRC32C per record + CRC'd footer.
// v3: v2 framing + the segmented op-log reports record (kReportsRecOpLogSegment).
inline constexpr uint32_t kFormatVersion = 3;
// The oldest version readers still accept.
inline constexpr uint32_t kMinFormatVersion = 1;

enum class Section : uint8_t {
  kTrace = 1,
  kReports = 2,
  kState = 3,
  kManifest = 4,
  // Sidecar journal of completed pass-2 chunks for resumable audits
  // (src/stream/checkpoint.h).
  kCheckpoint = 5,
};

// Record type 0 terminates every section (empty in v1, footer payload in v2).
inline constexpr uint8_t kEndRecord = 0;

// Envelope and v2 frame sizes, public for sidecar files sharing the envelope and for
// offset arithmetic in tests.
inline constexpr size_t kEnvelopeHeaderBytes = sizeof(kMagic) + 4 /*version*/ + 1 /*section*/;
inline constexpr size_t kRecordFrameBytesV2 = 1 /*type*/ + 8 /*length*/ + 4 /*crc*/;
inline constexpr size_t kFooterPayloadBytes = 8 /*record count*/ + 8 /*end offset*/;

// Trace-section record types, public because the out-of-core audit re-reads individual
// records by (offset, length, type) long after the streaming pass that indexed them.
inline constexpr uint8_t kTraceRecRequest = 1;
inline constexpr uint8_t kTraceRecResponse = 2;
// In-section header carrying the collector's shard id. Emitted (by sharded collectors)
// as the first record of the section; readers reject it anywhere else, and reject a
// second one — an in-section header is positional, like the envelope header itself.
inline constexpr uint8_t kTraceRecShardInfo = 3;

// Reports-section record types, public because the out-of-core audit re-reads slices of
// individual op-log records by (offset, length) long after the streaming pass that
// indexed them (src/stream/reports_index.h).
inline constexpr uint8_t kReportsRecObject = 1;
inline constexpr uint8_t kReportsRecOpLog = 2;
inline constexpr uint8_t kReportsRecGroup = 3;
inline constexpr uint8_t kReportsRecOpCounts = 4;
inline constexpr uint8_t kReportsRecNondet = 5;
// v3: one byte-capped slice of an object's op-log. Payload: u32 object, u32 segment_seq
// (0-based, strictly sequential per object), u64 first_seqnum (1-based, must continue the
// log exactly — no gaps, no overlap), u64 entry count, then the entry frames. An object
// encodes either as one monolithic kReportsRecOpLog or as segments, never both.
inline constexpr uint8_t kReportsRecOpLogSegment = 6;

// Writer-side segmentation cap: an object whose encoded entry frames exceed this many
// bytes spills as kReportsRecOpLogSegment records of at most this size (a single entry
// larger than the cap rides alone in its own segment), so pass-1 indexing never holds
// more than ~one segment of one object transiently resident.
inline constexpr uint64_t kMaxOpLogSegmentBytes = 64 * 1024;

// The 13-byte envelope header for `section` at kFormatVersion, for sidecar writers.
std::string EnvelopeHeader(Section section);

// Appends one v2 record (frame + CRC + payload) to `out`, for sidecar writers.
void AppendRecordFrame(std::string* out, uint8_t type, const std::string& payload);

// Parses the v2 record frame at the start of [data, data+n). False when n is too small.
bool ParseRecordFrameV2(const char* data, size_t n, uint8_t* type, uint64_t* len,
                        uint32_t* crc);

// Appends the v2 end record (type 0 + CRC'd footer: `records` non-end records, end frame
// beginning at byte `end_offset`), for spool/sidecar writers that append record frames
// incrementally and must seal a section byte-identical to the file writers' output.
void AppendEndRecordFrame(std::string* out, uint64_t records, uint64_t end_offset);

// Version-aware record stream over one section file (definition in wire_format.cc).
class RecordStream;

}  // namespace wire

// --- Trace files ---
// One record per TraceEvent, in collector order, so the collector can stream events to
// disk as an epoch closes without materializing a second copy.

class TraceWriter {
 public:
  TraceWriter() = default;
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // A nonzero shard_id stamps the file with a leading shard-info record, so a verifier
  // merging spill files from many collectors can identify and order the shards. Zero
  // (the default) writes the classic single-collector layout. Writes go to a temp file;
  // only a successful Finish renames it into place.
  Status Open(const std::string& path, uint32_t shard_id = 0, Env* env = nullptr);
  Status Append(const TraceEvent& event);
  // Writes the end record, fsyncs, and renames into place; the file exists at `path`
  // only after Finish succeeds.
  Status Finish();

 private:
  AtomicFileWriter atomic_;
  bool open_ = false;
  std::string path_;
  std::string scratch_;
  std::string error_;  // Sticky: a failed write poisons the rest of the file.
  size_t bytes_ = 0;
  uint64_t records_ = 0;
};

class TraceReader {
 public:
  TraceReader();
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  Status Open(const std::string& path, Env* env = nullptr);
  // True: *event holds the next trace event. False: clean end of section (and on any
  // further calls). Error: corrupt/truncated file (sticky across calls). A shard-info
  // record is consumed transparently (see shard_id()); it must be the first record of the
  // section and must not repeat — a duplicate or out-of-order in-section header rejects.
  Result<bool> Next(TraceEvent* event);

  // Shard id from the file's shard-info record; 0 until one is read (unsharded files
  // never carry one).
  uint32_t shard_id() const { return shard_id_; }

  // Location of the record the last successful Next() returned, for offset indexes built
  // by the out-of-core audit: the file offset of the record's payload (just past the
  // frame), the payload's byte length, its wire record type, and the payload's CRC32C
  // (from the file for v2, computed for v1 — either way, the checksum of the bytes this
  // reader just validated, so later point reads can prove the file did not change).
  uint64_t last_payload_offset() const { return last_payload_offset_; }
  uint64_t last_payload_bytes() const { return last_payload_bytes_; }
  uint8_t last_record_type() const { return last_record_type_; }
  uint32_t last_payload_crc() const { return last_payload_crc_; }

 private:
  std::unique_ptr<wire::RecordStream> stream_;
  std::string scratch_;
  bool done_ = false;
  std::string error_;  // Nonempty once a read has failed.
  uint64_t records_seen_ = 0;
  bool saw_shard_info_ = false;
  uint32_t shard_id_ = 0;
  uint64_t last_payload_offset_ = 0;
  uint64_t last_payload_bytes_ = 0;
  uint8_t last_record_type_ = 0;
  uint32_t last_payload_crc_ = 0;
};

Status WriteTraceFile(const std::string& path, const Trace& trace, uint32_t shard_id = 0,
                      Env* env = nullptr);
Result<Trace> ReadTraceFile(const std::string& path, Env* env = nullptr);

// Decodes one trace record payload (wire::kTraceRecRequest / kTraceRecResponse) exactly as
// TraceReader::Next would. The out-of-core audit uses this to materialize a single event
// from a point read at an offset recorded during the streaming pass.
Result<TraceEvent> DecodeTraceEventPayload(uint8_t record_type, const std::string& payload);

// Encodes one trace event as the record TraceWriter would frame — record type + canonical
// payload — so the socket transport (src/net) can stream events record-by-record and a
// receiver spooling them produces a file byte-identical to Collector::Flush's.
void EncodeTraceEventRecord(const TraceEvent& event, uint8_t* type, std::string* payload);

// --- Reports files ---
// Section layout: object-table records (in object-id order), one op-log record per
// non-empty log, group records, one op-counts record, nondet records (sorted by rid so the
// encoding is canonical).

class ReportsWriter {
 public:
  static Status WriteFile(const std::string& path, const Reports& reports,
                          Env* env = nullptr);
};

class ReportsReader {
 public:
  static Result<Reports> ReadFile(const std::string& path, Env* env = nullptr);
};

// Streaming reports-section reader mirroring TraceReader: yields raw records together
// with their payload byte locations, so the out-of-core audit can build per-object
// op-log offset indexes during one forward pass and point-read entry slices later.
class ReportsRecordReader {
 public:
  ReportsRecordReader();
  ~ReportsRecordReader();
  ReportsRecordReader(const ReportsRecordReader&) = delete;
  ReportsRecordReader& operator=(const ReportsRecordReader&) = delete;

  Status Open(const std::string& path, Env* env = nullptr);
  // True: *type/*payload hold the next record. False: clean end of section (and on any
  // further calls). Error: corrupt/truncated file (sticky across calls).
  Result<bool> Next(uint8_t* type, std::string* payload);

  // Location of the record the last successful Next() returned: the file offset of the
  // record's payload (just past the frame), its byte length, and its CRC32C (see
  // TraceReader::last_payload_crc).
  uint64_t last_payload_offset() const { return last_payload_offset_; }
  uint64_t last_payload_bytes() const { return last_payload_bytes_; }
  uint32_t last_payload_crc() const { return last_payload_crc_; }

 private:
  std::unique_ptr<wire::RecordStream> stream_;
  bool done_ = false;
  std::string error_;  // Nonempty once a read has failed.
  uint64_t last_payload_offset_ = 0;
  uint64_t last_payload_bytes_ = 0;
  uint32_t last_payload_crc_ = 0;
};

// Cross-record validation state for one reports read: op-counts must occur at most once,
// and object records form an in-section header block (all before the first non-object
// record, no duplicate descriptor). Public so the in-memory ReadFile and the streaming
// index decode through the exact same code — one validator, identical error text.
struct ReportsDecodeState {
  bool saw_op_counts = false;
  bool saw_non_object = false;
  std::set<std::pair<uint8_t, std::string>> declared;
  // v3 segment sequencing: object id -> next expected segment_seq. Presence of an entry
  // marks the object as segmented, so a later monolithic op-log record for it (or a
  // segment for an object already covered monolithically) is rejected.
  std::map<uint32_t, uint32_t> segments;
};

// Decodes one reports record payload into *out exactly as ReadReportsFile would.
Status DecodeReportsRecordPayload(uint8_t type, const std::string& payload,
                                  const std::string& path, ReportsDecodeState* state,
                                  Reports* out);

// Byte span of one op-log entry inside an op-log record payload, relative to the payload
// start: the entry's frame (rid + opnum + type + length-prefixed contents) begins at
// `offset` and spans `bytes`. Valid only for a payload DecodeReportsRecordPayload
// accepted; the spans of consecutive entries are contiguous.
struct OpLogEntrySpan {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

// Walks a validated op-log record payload and returns each entry's span, in log order.
std::vector<OpLogEntrySpan> IndexOpLogEntries(const std::string& payload);

// Parsed fixed prefix of a v3 segmented op-log record payload.
struct OpLogSegmentHeader {
  uint32_t object = 0;
  uint32_t segment_seq = 0;
  uint64_t first_seqnum = 0;  // 1-based seqnum of the segment's first entry.
  uint64_t count = 0;
};

// Walks a validated kReportsRecOpLogSegment payload: fills *header and returns each
// entry's span (in segment order). Empty on malformed input, like IndexOpLogEntries.
std::vector<OpLogEntrySpan> IndexOpLogSegmentEntries(const std::string& payload,
                                                     OpLogSegmentHeader* header);

// Decodes one op-log entry frame (a single OpLogEntrySpan's bytes) exactly as the reports
// reader would. The out-of-core audit uses this to materialize an entry from a point read
// at an offset recorded during the streaming pass.
Status DecodeOpLogEntry(const char* data, size_t size, OpRecord* out);

// Enumerates the records a reports spill file for `reports` would contain, in file order
// (the canonical encoding ReportsWriter produces), invoking `fn(type, payload)` per
// record — the end record excluded. Shared by ReportsWriter::WriteFile and the network
// CollectorClient, so a reports stream spooled record-by-record is byte-identical to a
// direct spill of the same Reports.
void ForEachReportsRecord(const Reports& reports,
                          const std::function<void(uint8_t, const std::string&)>& fn);

inline Status WriteReportsFile(const std::string& path, const Reports& reports,
                               Env* env = nullptr) {
  return ReportsWriter::WriteFile(path, reports, env);
}
inline Result<Reports> ReadReportsFile(const std::string& path, Env* env = nullptr) {
  return ReportsReader::ReadFile(path, env);
}

// --- Shard manifest files ---
// A tiny wire-format section (kind 4) naming the spill-file pair each collector shard
// produced for one epoch, so a single verifier can audit many front ends:
// `AuditSession::FeedShardedEpoch(manifest_path)` merge-joins the listed pairs into one
// logical epoch. File paths are stored as written (typically relative to the manifest's
// own directory) and resolved by the reader's caller. Shard ids must be unique within a
// manifest; the optional epoch record, when present, must precede the shard entries —
// the same in-section header discipline the trace shard-info record follows.

struct ShardManifestEntry {
  uint32_t shard_id = 0;
  std::string trace_file;
  std::string reports_file;
};

struct ShardManifest {
  uint64_t epoch = 0;
  std::vector<ShardManifestEntry> shards;
};

Status WriteShardManifestFile(const std::string& path, const ShardManifest& manifest,
                              Env* env = nullptr);
Result<ShardManifest> ReadShardManifestFile(const std::string& path, Env* env = nullptr);

// --- InitialState snapshot files ---
// Registers, KV contents, and every database table (schema + rows), enough to reopen an
// AuditSession in a fresh process with the state a previous epoch's audit accepted.

Status WriteInitialStateFile(const std::string& path, const InitialState& state,
                             Env* env = nullptr);
Result<InitialState> ReadInitialStateFile(const std::string& path, Env* env = nullptr);

// --- Exact wire sizes ---
// The byte count of the file the corresponding writer would produce (header and end
// record included). `nondet_only` prices a reports file carrying only the nondeterminism
// records — the paper's baseline is charged for exactly that advice (§5.1).

size_t TraceWireBytes(const Trace& trace);
size_t ReportsWireBytes(const Reports& reports, bool nondet_only = false);
size_t InitialStateWireBytes(const InitialState& state);

}  // namespace orochi

#endif  // SRC_OBJECTS_WIRE_FORMAT_H_
