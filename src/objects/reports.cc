#include "src/objects/reports.h"

namespace orochi {

int Reports::FindObject(ObjectKind kind, const std::string& name) const {
  for (size_t i = 0; i < objects.size(); i++) {
    if (objects[i].kind == kind && objects[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t Reports::ApproximateBytes(bool nondet_only) const {
  size_t bytes = 0;
  if (!nondet_only) {
    for (const ObjectDesc& d : objects) {
      bytes += d.name.size() + 2;
    }
    for (const auto& log : op_logs) {
      for (const OpRecord& op : log) {
        bytes += 8 /*rid*/ + 4 /*opnum*/ + 1 /*optype*/ + op.contents.size();
      }
    }
    for (const auto& [tag, rids] : groups) {
      (void)tag;
      bytes += 8 + 8 * rids.size();
    }
    bytes += 12 * op_counts.size();
  }
  for (const auto& [rid, records] : nondet) {
    (void)rid;
    bytes += 8;
    for (const NondetRecord& r : records) {
      bytes += r.name.size() + r.value.size() + 2;
    }
  }
  return bytes;
}

}  // namespace orochi
