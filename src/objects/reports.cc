#include "src/objects/reports.h"

#include <utility>

namespace orochi {

int Reports::FindObject(ObjectKind kind, const std::string& name) const {
  for (size_t i = 0; i < objects.size(); i++) {
    if (objects[i].kind == kind && objects[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status AppendReports(Reports* dst, const Reports& src, ReportsMergeMap* map) {
  // Validate rid-disjointness up front so an error never leaves dst half-merged.
  for (const auto& [rid, count] : src.op_counts) {
    (void)count;
    if (dst->op_counts.count(rid) > 0) {
      return Status::Error("AppendReports: rid " + std::to_string(rid) +
                           " appears in both epochs");
    }
  }
  for (const auto& [rid, records] : src.nondet) {
    (void)records;
    if (dst->nondet.count(rid) > 0) {
      return Status::Error("AppendReports: nondet for rid " + std::to_string(rid) +
                           " appears in both epochs");
    }
  }
  // Remap src object ids onto dst's table, creating objects as needed. A src id always
  // maps to a valid dst log because missing descriptors are appended before use.
  std::vector<size_t> remap(src.objects.size());
  for (size_t i = 0; i < src.objects.size(); i++) {
    int id = dst->FindObject(src.objects[i].kind, src.objects[i].name);
    if (id < 0) {
      dst->objects.push_back(src.objects[i]);
      dst->op_logs.emplace_back();
      id = static_cast<int>(dst->objects.size() - 1);
    }
    remap[i] = static_cast<size_t>(id);
  }
  std::vector<uint64_t> seqnum_base(src.objects.size(), 0);
  for (size_t i = 0; i < src.op_logs.size() && i < src.objects.size(); i++) {
    std::vector<OpRecord>& log = dst->op_logs[remap[i]];
    seqnum_base[i] = log.size();
    log.insert(log.end(), src.op_logs[i].begin(), src.op_logs[i].end());
  }
  for (const auto& [tag, rids] : src.groups) {
    std::vector<RequestId>& merged = dst->groups[tag];
    merged.insert(merged.end(), rids.begin(), rids.end());
  }
  dst->op_counts.insert(src.op_counts.begin(), src.op_counts.end());
  dst->nondet.insert(src.nondet.begin(), src.nondet.end());
  if (map != nullptr) {
    map->object_remap = std::move(remap);
    map->seqnum_base = std::move(seqnum_base);
  }
  return Status::Ok();
}

}  // namespace orochi
