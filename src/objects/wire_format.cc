#include "src/objects/wire_format.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "src/lang/value.h"

namespace orochi {

namespace {

// A corrupt length prefix must not make the reader attempt a multi-gigabyte allocation.
constexpr uint64_t kMaxRecordBytes = 1ull << 30;

constexpr size_t kHeaderBytes = sizeof(wire::kMagic) + 4 /*version*/ + 1 /*section*/;
constexpr size_t kRecordFrameBytes = 1 /*type*/ + 8 /*length*/;

// Trace section record types (public aliases live in wire:: for the point reader).
constexpr uint8_t kRecRequest = wire::kTraceRecRequest;
constexpr uint8_t kRecResponse = wire::kTraceRecResponse;
constexpr uint8_t kRecShardInfo = wire::kTraceRecShardInfo;
// Reports section record types (public aliases live in wire:: for the streaming index).
constexpr uint8_t kRecObject = wire::kReportsRecObject;
constexpr uint8_t kRecOpLog = wire::kReportsRecOpLog;
constexpr uint8_t kRecGroup = wire::kReportsRecGroup;
constexpr uint8_t kRecOpCounts = wire::kReportsRecOpCounts;
constexpr uint8_t kRecNondet = wire::kReportsRecNondet;
// State section record types.
constexpr uint8_t kRecRegisters = 1;
constexpr uint8_t kRecKv = 2;
constexpr uint8_t kRecDbTable = 3;
// Manifest section record types.
constexpr uint8_t kRecManifestEpoch = 1;
constexpr uint8_t kRecManifestShard = 2;

// --- little-endian append primitives ---

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

size_t StrWireBytes(const std::string& s) { return 4 + s.size(); }

// --- defensive cursor over an in-memory payload ---

struct Cursor {
  const unsigned char* p;
  size_t n;
  size_t pos = 0;

  bool TakeU8(uint8_t* v) {
    if (pos + 1 > n) {
      return false;
    }
    *v = p[pos++];
    return true;
  }
  bool TakeU32(uint32_t* v) {
    if (pos + 4 > n) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; i++) {
      *v |= static_cast<uint32_t>(p[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (pos + 8 > n) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; i++) {
      *v |= static_cast<uint64_t>(p[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool TakeF64(double* v) {
    uint64_t bits;
    if (!TakeU64(&bits)) {
      return false;
    }
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool TakeStr(std::string* s) {
    uint32_t len;
    if (!TakeU32(&len) || pos + len > n) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(p) + pos, len);
    pos += len;
    return true;
  }
  bool SkipStr() {
    uint32_t len;
    if (!TakeU32(&len) || pos + len > n) {
      return false;
    }
    pos += len;
    return true;
  }
  bool AtEnd() const { return pos == n; }

  size_t Remaining() const { return n - pos; }

  // True when a declared element count could fit in the remaining payload, each element
  // costing at least `min_element_bytes`. Checked before any reserve/loop so a forged
  // count can neither trigger a huge allocation (vector::reserve would throw, and this
  // codebase is exception-free) nor spin a long loop.
  bool CountFits(uint64_t count, size_t min_element_bytes) const {
    return count <= Remaining() / min_element_bytes;
  }
};

Cursor MakeCursor(const std::string& bytes) {
  return Cursor{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};
}

// --- file sink: buffered FILE* writes with sticky failure, or pure byte counting ---

class Sink {
 public:
  Sink() = default;  // Counting only.
  explicit Sink(std::FILE* f) : file_(f) {}

  void Write(const char* p, size_t n) {
    if (file_ != nullptr && !failed_ && std::fwrite(p, 1, n, file_) != n) {
      failed_ = true;
    }
    bytes_ += n;
  }
  void Write(const std::string& s) { Write(s.data(), s.size()); }

  void WriteHeader(wire::Section section) {
    std::string h;
    h.append(wire::kMagic, sizeof(wire::kMagic));
    PutU32(&h, wire::kFormatVersion);
    PutU8(&h, static_cast<uint8_t>(section));
    Write(h);
  }

  void WriteRecord(uint8_t type, const std::string& payload) {
    std::string frame;
    PutU8(&frame, type);
    PutU64(&frame, payload.size());
    Write(frame);
    Write(payload);
  }

  void WriteEnd() { WriteRecord(wire::kEndRecord, std::string()); }

  bool failed() const { return failed_; }
  size_t bytes() const { return bytes_; }

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  size_t bytes_ = 0;
};

Status SinkStatus(const Sink& sink, const std::string& path) {
  if (sink.failed()) {
    return Status::Error("wire: short write to " + path);
  }
  return Status::Ok();
}

Status CloseFile(std::FILE** f, const std::string& path, Status pending) {
  if (*f != nullptr) {
    int rc = std::fclose(*f);
    *f = nullptr;
    if (rc != 0 && pending.ok()) {
      return Status::Error("wire: close failed for " + path);
    }
  }
  return pending;
}

// Validates the 13-byte envelope header against the expected section kind.
Status CheckHeader(const unsigned char* h, wire::Section want, const std::string& path) {
  if (std::memcmp(h, wire::kMagic, sizeof(wire::kMagic)) != 0) {
    return Status::Error("wire: bad magic in " + path);
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; i++) {
    version |= static_cast<uint32_t>(h[sizeof(wire::kMagic) + i]) << (8 * i);
  }
  if (version != wire::kFormatVersion) {
    return Status::Error("wire: unsupported format version " + std::to_string(version) +
                         " in " + path);
  }
  uint8_t section = h[sizeof(wire::kMagic) + 4];
  if (section != static_cast<uint8_t>(want)) {
    return Status::Error("wire: " + path + " holds section kind " + std::to_string(section) +
                         ", expected " + std::to_string(static_cast<int>(want)));
  }
  return Status::Ok();
}

Status ReadHeaderFromFile(std::FILE* f, wire::Section want, const std::string& path) {
  unsigned char h[kHeaderBytes];
  if (std::fread(h, 1, sizeof(h), f) != sizeof(h)) {
    return Status::Error("wire: truncated header in " + path);
  }
  return CheckHeader(h, want, path);
}

// Reads one record frame + payload. Returns false on the end record; errors on
// truncation, oversized lengths, or trailing bytes after the end record.
Result<bool> ReadRecordFromFile(std::FILE* f, const std::string& path, uint8_t* type,
                                std::string* payload) {
  unsigned char frame[kRecordFrameBytes];
  if (std::fread(frame, 1, sizeof(frame), f) != sizeof(frame)) {
    return Result<bool>::Error("wire: truncated record frame in " + path);
  }
  *type = frame[0];
  uint64_t len = 0;
  for (int i = 0; i < 8; i++) {
    len |= static_cast<uint64_t>(frame[1 + i]) << (8 * i);
  }
  if (*type == wire::kEndRecord) {
    if (len != 0) {
      return Result<bool>::Error("wire: end record with nonzero length in " + path);
    }
    if (std::fgetc(f) != EOF) {
      return Result<bool>::Error("wire: trailing bytes after end record in " + path);
    }
    return false;
  }
  if (len > kMaxRecordBytes) {
    return Result<bool>::Error("wire: record length " + std::to_string(len) +
                               " exceeds limit in " + path);
  }
  payload->resize(static_cast<size_t>(len));
  if (len > 0 && std::fread(&(*payload)[0], 1, payload->size(), f) != payload->size()) {
    return Result<bool>::Error("wire: truncated record payload in " + path);
  }
  return true;
}

// --- trace event payloads ---

uint8_t TraceEventRecordType(const TraceEvent& e) {
  return e.kind == TraceEvent::Kind::kRequest ? kRecRequest : kRecResponse;
}

void EncodeTraceEvent(const TraceEvent& e, std::string* out) {
  out->clear();
  PutU64(out, e.rid);
  if (e.kind == TraceEvent::Kind::kRequest) {
    PutStr(out, e.script);
    PutU32(out, static_cast<uint32_t>(e.params.size()));
    for (const auto& [k, v] : e.params) {
      PutStr(out, k);
      PutStr(out, v);
    }
  } else {
    PutStr(out, e.body);
  }
}

Result<TraceEvent> DecodeTraceEvent(uint8_t type, const std::string& payload,
                                    const std::string& path) {
  TraceEvent e;
  Cursor c = MakeCursor(payload);
  if (type == kRecRequest) {
    e.kind = TraceEvent::Kind::kRequest;
    uint32_t nparams = 0;
    if (!c.TakeU64(&e.rid) || !c.TakeStr(&e.script) || !c.TakeU32(&nparams)) {
      return Result<TraceEvent>::Error("wire: malformed request record in " + path);
    }
    for (uint32_t i = 0; i < nparams; i++) {
      std::string k, v;
      if (!c.TakeStr(&k) || !c.TakeStr(&v)) {
        return Result<TraceEvent>::Error("wire: malformed request params in " + path);
      }
      e.params[std::move(k)] = std::move(v);
    }
  } else if (type == kRecResponse) {
    e.kind = TraceEvent::Kind::kResponse;
    if (!c.TakeU64(&e.rid) || !c.TakeStr(&e.body)) {
      return Result<TraceEvent>::Error("wire: malformed response record in " + path);
    }
  } else {
    return Result<TraceEvent>::Error("wire: unknown trace record type " +
                                     std::to_string(type) + " in " + path);
  }
  if (!c.AtEnd()) {
    return Result<TraceEvent>::Error("wire: trailing bytes in trace record in " + path);
  }
  return e;
}

// --- reports section encode ---

void WriteReportsToSink(Sink* sink, const Reports& reports, bool nondet_only) {
  sink->WriteHeader(wire::Section::kReports);
  std::string payload;
  if (!nondet_only) {
    for (const ObjectDesc& d : reports.objects) {
      payload.clear();
      PutU8(&payload, static_cast<uint8_t>(d.kind));
      PutStr(&payload, d.name);
      sink->WriteRecord(kRecObject, payload);
    }
    for (size_t i = 0; i < reports.op_logs.size(); i++) {
      const std::vector<OpRecord>& log = reports.op_logs[i];
      if (log.empty()) {
        continue;
      }
      payload.clear();
      PutU32(&payload, static_cast<uint32_t>(i));
      PutU64(&payload, log.size());
      for (const OpRecord& op : log) {
        PutU64(&payload, op.rid);
        PutU32(&payload, op.opnum);
        PutU8(&payload, static_cast<uint8_t>(op.type));
        PutStr(&payload, op.contents);
      }
      sink->WriteRecord(kRecOpLog, payload);
    }
    for (const auto& [tag, rids] : reports.groups) {
      payload.clear();
      PutU64(&payload, tag);
      PutU64(&payload, rids.size());
      for (RequestId rid : rids) {
        PutU64(&payload, rid);
      }
      sink->WriteRecord(kRecGroup, payload);
    }
    // unordered_map -> sorted so the encoding (and its byte count) is canonical.
    std::vector<std::pair<RequestId, uint32_t>> counts(reports.op_counts.begin(),
                                                       reports.op_counts.end());
    std::sort(counts.begin(), counts.end());
    payload.clear();
    PutU64(&payload, counts.size());
    for (const auto& [rid, count] : counts) {
      PutU64(&payload, rid);
      PutU32(&payload, count);
    }
    sink->WriteRecord(kRecOpCounts, payload);
  }
  std::vector<RequestId> nondet_rids;
  nondet_rids.reserve(reports.nondet.size());
  for (const auto& [rid, records] : reports.nondet) {
    (void)records;
    nondet_rids.push_back(rid);
  }
  std::sort(nondet_rids.begin(), nondet_rids.end());
  for (RequestId rid : nondet_rids) {
    const std::vector<NondetRecord>& records = reports.nondet.at(rid);
    payload.clear();
    PutU64(&payload, rid);
    PutU32(&payload, static_cast<uint32_t>(records.size()));
    for (const NondetRecord& r : records) {
      PutStr(&payload, r.name);
      PutStr(&payload, r.value);
    }
    sink->WriteRecord(kRecNondet, payload);
  }
  sink->WriteEnd();
}

}  // namespace

// One decoder for both the in-memory reader and the streaming index (declared in the
// header; ReportsDecodeState carries the cross-record validation). Beyond the
// single-occurrence op-counts flag, it enforces the object table's header discipline:
// object records declare the id space every later record indexes into, so they must all
// precede the first non-object record (out-of-order declarations could retroactively
// legitimize an op-log already rejected), and no (kind, name) descriptor may be declared
// twice (FindObject resolves a descriptor to one id; a duplicate would let two distinct
// byte streams decode to the same Reports).
Status DecodeReportsRecordPayload(uint8_t type, const std::string& payload,
                                  const std::string& path, ReportsDecodeState* state,
                                  Reports* out) {
  Cursor c = MakeCursor(payload);
  if (type != kRecObject) {
    state->saw_non_object = true;
  }
  switch (type) {
    case kRecObject: {
      uint8_t kind;
      std::string name;
      if (!c.TakeU8(&kind) || !c.TakeStr(&name) || !c.AtEnd()) {
        return Status::Error("wire: malformed object record in " + path);
      }
      if (kind > static_cast<uint8_t>(ObjectKind::kDb)) {
        return Status::Error("wire: unknown object kind " + std::to_string(kind) + " in " +
                             path);
      }
      if (state->saw_non_object) {
        return Status::Error("wire: out-of-order object record in " + path);
      }
      if (!state->declared.emplace(kind, name).second) {
        return Status::Error("wire: duplicate object record for '" + name + "' in " + path);
      }
      out->objects.push_back({static_cast<ObjectKind>(kind), std::move(name)});
      out->op_logs.emplace_back();
      return Status::Ok();
    }
    case kRecOpLog: {
      uint32_t object = 0;
      uint64_t count = 0;
      if (!c.TakeU32(&object) || !c.TakeU64(&count)) {
        return Status::Error("wire: malformed op-log record in " + path);
      }
      if (object >= out->op_logs.size()) {
        return Status::Error("wire: op-log for unknown object id " + std::to_string(object) +
                             " in " + path);
      }
      std::vector<OpRecord>& log = out->op_logs[object];
      if (!log.empty()) {
        return Status::Error("wire: duplicate op-log record for object id " +
                             std::to_string(object) + " in " + path);
      }
      if (!c.CountFits(count, 8 + 4 + 1 + 4)) {  // rid + opnum + type + empty contents.
        return Status::Error("wire: op-log count " + std::to_string(count) +
                             " exceeds payload in " + path);
      }
      log.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; i++) {
        OpRecord op;
        uint8_t optype;
        if (!c.TakeU64(&op.rid) || !c.TakeU32(&op.opnum) || !c.TakeU8(&optype) ||
            !c.TakeStr(&op.contents)) {
          return Status::Error("wire: malformed op record in " + path);
        }
        if (optype > static_cast<uint8_t>(StateOpType::kDbOp)) {
          return Status::Error("wire: unknown op type " + std::to_string(optype) + " in " +
                               path);
        }
        op.type = static_cast<StateOpType>(optype);
        log.push_back(std::move(op));
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in op-log record in " + path);
      }
      return Status::Ok();
    }
    case kRecGroup: {
      uint64_t tag = 0, count = 0;
      if (!c.TakeU64(&tag) || !c.TakeU64(&count)) {
        return Status::Error("wire: malformed group record in " + path);
      }
      if (out->groups.count(tag) > 0) {
        return Status::Error("wire: duplicate group tag " + std::to_string(tag) + " in " +
                             path);
      }
      if (!c.CountFits(count, 8)) {
        return Status::Error("wire: group size " + std::to_string(count) +
                             " exceeds payload in " + path);
      }
      std::vector<RequestId>& rids = out->groups[tag];
      rids.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; i++) {
        RequestId rid;
        if (!c.TakeU64(&rid)) {
          return Status::Error("wire: malformed group record in " + path);
        }
        rids.push_back(rid);
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in group record in " + path);
      }
      return Status::Ok();
    }
    case kRecOpCounts: {
      // The writer emits exactly one op-counts record; accepting several would let two
      // distinct byte streams decode to the same Reports.
      if (state->saw_op_counts) {
        return Status::Error("wire: duplicate op-counts record in " + path);
      }
      state->saw_op_counts = true;
      uint64_t count = 0;
      if (!c.TakeU64(&count)) {
        return Status::Error("wire: malformed op-counts record in " + path);
      }
      for (uint64_t i = 0; i < count; i++) {
        RequestId rid;
        uint32_t ops;
        if (!c.TakeU64(&rid) || !c.TakeU32(&ops)) {
          return Status::Error("wire: malformed op-counts record in " + path);
        }
        if (!out->op_counts.emplace(rid, ops).second) {
          return Status::Error("wire: duplicate op count for rid " + std::to_string(rid) +
                               " in " + path);
        }
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in op-counts record in " + path);
      }
      return Status::Ok();
    }
    case kRecNondet: {
      RequestId rid;
      uint32_t count = 0;
      if (!c.TakeU64(&rid) || !c.TakeU32(&count)) {
        return Status::Error("wire: malformed nondet record in " + path);
      }
      if (out->nondet.count(rid) > 0) {
        return Status::Error("wire: duplicate nondet record for rid " + std::to_string(rid) +
                             " in " + path);
      }
      if (!c.CountFits(count, 4 + 4)) {  // Two empty strings.
        return Status::Error("wire: nondet count " + std::to_string(count) +
                             " exceeds payload in " + path);
      }
      std::vector<NondetRecord>& records = out->nondet[rid];
      records.reserve(count);
      for (uint32_t i = 0; i < count; i++) {
        NondetRecord r;
        if (!c.TakeStr(&r.name) || !c.TakeStr(&r.value)) {
          return Status::Error("wire: malformed nondet record in " + path);
        }
        records.push_back(std::move(r));
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in nondet record in " + path);
      }
      return Status::Ok();
    }
    default:
      return Status::Error("wire: unknown reports record type " + std::to_string(type) +
                           " in " + path);
  }
}

std::vector<OpLogEntrySpan> IndexOpLogEntries(const std::string& payload) {
  std::vector<OpLogEntrySpan> spans;
  Cursor c = MakeCursor(payload);
  uint32_t object = 0;
  uint64_t count = 0;
  if (!c.TakeU32(&object) || !c.TakeU64(&count) ||
      !c.CountFits(count, 8 + 4 + 1 + 4)) {
    return spans;
  }
  spans.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; i++) {
    OpLogEntrySpan span;
    span.offset = c.pos;
    uint64_t rid = 0;
    uint32_t opnum = 0;
    uint8_t optype = 0;
    if (!c.TakeU64(&rid) || !c.TakeU32(&opnum) || !c.TakeU8(&optype) || !c.SkipStr()) {
      spans.clear();
      return spans;
    }
    span.bytes = c.pos - span.offset;
    spans.push_back(span);
  }
  return spans;
}

Status DecodeOpLogEntry(const char* data, size_t size, OpRecord* out) {
  Cursor c{reinterpret_cast<const unsigned char*>(data), size};
  uint8_t optype = 0;
  if (!c.TakeU64(&out->rid) || !c.TakeU32(&out->opnum) || !c.TakeU8(&optype) ||
      !c.TakeStr(&out->contents) || !c.AtEnd()) {
    return Status::Error("wire: malformed op-log entry slice");
  }
  if (optype > static_cast<uint8_t>(StateOpType::kDbOp)) {
    return Status::Error("wire: unknown op type in op-log entry slice");
  }
  out->type = static_cast<StateOpType>(optype);
  return Status::Ok();
}

namespace {

// --- state section encode ---

void EncodeValueMap(const std::map<std::string, Value>& m, std::string* out) {
  PutU64(out, m.size());
  for (const auto& [name, v] : m) {
    PutStr(out, name);
    PutStr(out, v.Serialize());
  }
}

Status DecodeValueMap(Cursor* c, const std::string& what, const std::string& path,
                      std::map<std::string, Value>* out) {
  uint64_t count = 0;
  if (!c->TakeU64(&count)) {
    return Status::Error("wire: malformed " + what + " record in " + path);
  }
  for (uint64_t i = 0; i < count; i++) {
    std::string name, bytes;
    if (!c->TakeStr(&name) || !c->TakeStr(&bytes)) {
      return Status::Error("wire: malformed " + what + " record in " + path);
    }
    Result<Value> v = DeserializeValue(bytes);
    if (!v.ok()) {
      return Status::Error("wire: bad " + what + " value for '" + name + "' in " + path +
                           ": " + v.error());
    }
    if (!out->emplace(std::move(name), std::move(v).value()).second) {
      return Status::Error("wire: duplicate " + what + " entry in " + path);
    }
  }
  if (!c->AtEnd()) {
    return Status::Error("wire: trailing bytes in " + what + " record in " + path);
  }
  return Status::Ok();
}

void EncodeSqlCell(const SqlValue& v, std::string* out) {
  if (v.is_null()) {
    PutU8(out, 0);
  } else if (v.is_int()) {
    PutU8(out, 1);
    PutU64(out, static_cast<uint64_t>(v.as_int()));
  } else if (v.is_float()) {
    PutU8(out, 2);
    PutF64(out, v.as_float());
  } else {
    PutU8(out, 3);
    PutStr(out, v.as_text());
  }
}

bool DecodeSqlCell(Cursor* c, SqlValue* out) {
  uint8_t tag;
  if (!c->TakeU8(&tag)) {
    return false;
  }
  switch (tag) {
    case 0:
      *out = SqlValue::Null();
      return true;
    case 1: {
      uint64_t bits;
      if (!c->TakeU64(&bits)) {
        return false;
      }
      *out = SqlValue::Int(static_cast<int64_t>(bits));
      return true;
    }
    case 2: {
      double d;
      if (!c->TakeF64(&d)) {
        return false;
      }
      *out = SqlValue::Float(d);
      return true;
    }
    case 3: {
      std::string s;
      if (!c->TakeStr(&s)) {
        return false;
      }
      *out = SqlValue::Text(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

void WriteStateToSink(Sink* sink, const InitialState& state) {
  sink->WriteHeader(wire::Section::kState);
  std::string payload;
  payload.clear();
  EncodeValueMap(state.registers, &payload);
  sink->WriteRecord(kRecRegisters, payload);
  payload.clear();
  EncodeValueMap(state.kv, &payload);
  sink->WriteRecord(kRecKv, payload);
  for (const std::string& table : state.db.TableNames()) {
    const std::vector<ColumnDef>* schema = state.db.Schema(table);
    const std::vector<SqlRow>* rows = state.db.Rows(table);
    payload.clear();
    PutStr(&payload, table);
    PutU32(&payload, schema == nullptr ? 0 : static_cast<uint32_t>(schema->size()));
    if (schema != nullptr) {
      for (const ColumnDef& col : *schema) {
        PutStr(&payload, col.name);
        PutU8(&payload, static_cast<uint8_t>(col.type));
      }
    }
    PutU64(&payload, rows == nullptr ? 0 : rows->size());
    if (rows != nullptr) {
      for (const SqlRow& row : *rows) {
        for (const SqlValue& cell : row) {
          EncodeSqlCell(cell, &payload);
        }
      }
    }
    sink->WriteRecord(kRecDbTable, payload);
  }
  sink->WriteEnd();
}

Status DecodeStateRecord(uint8_t type, const std::string& payload, const std::string& path,
                         bool* saw_registers, bool* saw_kv, InitialState* out) {
  Cursor c = MakeCursor(payload);
  switch (type) {
    case kRecRegisters:
      if (*saw_registers) {
        return Status::Error("wire: duplicate registers record in " + path);
      }
      *saw_registers = true;
      return DecodeValueMap(&c, "register", path, &out->registers);
    case kRecKv:
      if (*saw_kv) {
        return Status::Error("wire: duplicate kv record in " + path);
      }
      *saw_kv = true;
      return DecodeValueMap(&c, "kv", path, &out->kv);
    case kRecDbTable: {
      std::string table;
      uint32_t ncols = 0;
      if (!c.TakeStr(&table) || !c.TakeU32(&ncols)) {
        return Status::Error("wire: malformed table record in " + path);
      }
      std::vector<ColumnDef> schema;
      schema.reserve(ncols);
      for (uint32_t i = 0; i < ncols; i++) {
        ColumnDef col;
        uint8_t sqltype;
        if (!c.TakeStr(&col.name) || !c.TakeU8(&sqltype)) {
          return Status::Error("wire: malformed table schema in " + path);
        }
        if (sqltype > static_cast<uint8_t>(SqlType::kText)) {
          return Status::Error("wire: unknown SQL type " + std::to_string(sqltype) + " in " +
                               path);
        }
        col.type = static_cast<SqlType>(sqltype);
        schema.push_back(std::move(col));
      }
      uint64_t nrows = 0;
      if (!c.TakeU64(&nrows)) {
        return Status::Error("wire: malformed table record in " + path);
      }
      // Each cell costs at least its 1-byte tag, so a row costs at least ncols bytes; a
      // zero-width schema admits no rows at all (otherwise the row loop would consume no
      // payload and a forged nrows could spin it unbounded).
      if (ncols == 0 ? nrows > 0 : !c.CountFits(nrows, ncols)) {
        return Status::Error("wire: table row count " + std::to_string(nrows) +
                             " exceeds payload in " + path);
      }
      std::vector<SqlRow> rows;
      rows.reserve(static_cast<size_t>(nrows));
      for (uint64_t r = 0; r < nrows; r++) {
        SqlRow row;
        row.reserve(ncols);
        for (uint32_t i = 0; i < ncols; i++) {
          SqlValue cell;
          if (!DecodeSqlCell(&c, &cell)) {
            return Status::Error("wire: malformed table row in " + path);
          }
          row.push_back(std::move(cell));
        }
        rows.push_back(std::move(row));
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in table record in " + path);
      }
      if (Status st = out->db.LoadTable(table, std::move(schema), std::move(rows));
          !st.ok()) {
        return Status::Error("wire: " + st.error() + " in " + path);
      }
      return Status::Ok();
    }
    default:
      return Status::Error("wire: unknown state record type " + std::to_string(type) +
                           " in " + path);
  }
}

// Drives the record loop shared by the reports and state readers.
template <typename Fn>
Status ReadSectionFile(const std::string& path, wire::Section section, Fn&& on_record) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("wire: cannot open " + path);
  }
  Status st = ReadHeaderFromFile(f, section, path);
  std::string payload;
  while (st.ok()) {
    uint8_t type = 0;
    Result<bool> more = ReadRecordFromFile(f, path, &type, &payload);
    if (!more.ok()) {
      st = Status::Error(more.error());
      break;
    }
    if (!more.value()) {
      break;
    }
    st = on_record(type, payload);
  }
  return CloseFile(&f, path, st);
}

}  // namespace

// --- TraceWriter / TraceReader ---

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status TraceWriter::Open(const std::string& path, uint32_t shard_id) {
  if (file_ != nullptr) {
    return Status::Error("wire: TraceWriter already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Error("wire: cannot create " + path);
  }
  Sink sink(file_);
  sink.WriteHeader(wire::Section::kTrace);
  if (shard_id != 0) {
    std::string payload;
    PutU32(&payload, shard_id);
    sink.WriteRecord(kRecShardInfo, payload);
  }
  return SinkStatus(sink, path);
}

Status TraceWriter::Append(const TraceEvent& event) {
  if (file_ == nullptr) {
    return Status::Error("wire: TraceWriter is not open");
  }
  EncodeTraceEvent(event, &scratch_);
  Sink sink(file_);
  sink.WriteRecord(TraceEventRecordType(event), scratch_);
  return SinkStatus(sink, "trace file");
}

Status TraceWriter::Finish() {
  if (file_ == nullptr) {
    return Status::Error("wire: TraceWriter is not open");
  }
  Sink sink(file_);
  sink.WriteEnd();
  Status st = SinkStatus(sink, "trace file");
  return CloseFile(&file_, "trace file", st);
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status TraceReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::Error("wire: TraceReader already open");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::Error("wire: cannot open " + path);
  }
  Status st = ReadHeaderFromFile(file_, wire::Section::kTrace, path);
  if (!st.ok()) {
    return CloseFile(&file_, path, st);
  }
  pos_ = kHeaderBytes;
  return Status::Ok();
}

Result<bool> TraceReader::Next(TraceEvent* event) {
  if (done_) {
    // A clean end stays a clean end on repeated calls; a failure stays sticky.
    if (!error_.empty()) {
      return Result<bool>::Error(error_);
    }
    return false;
  }
  if (file_ == nullptr) {
    return Result<bool>::Error("wire: TraceReader is not open");
  }
  auto fail = [&](const std::string& message) {
    done_ = true;
    (void)CloseFile(&file_, "trace file", Status::Ok());
    error_ = message;
    return Result<bool>::Error(error_);
  };
  while (true) {
    uint8_t type = 0;
    Result<bool> more = ReadRecordFromFile(file_, "trace file", &type, &scratch_);
    if (!more.ok() || !more.value()) {
      done_ = true;
      Status st =
          CloseFile(&file_, "trace file", more.ok() ? Status::Ok() : Status::Error(more.error()));
      if (!st.ok()) {
        error_ = st.error();
        return Result<bool>::Error(error_);
      }
      return false;
    }
    const uint64_t payload_offset = pos_ + kRecordFrameBytes;
    pos_ = payload_offset + scratch_.size();
    if (type == kRecShardInfo) {
      // An in-section header: positional like the envelope header, so it must come first
      // and must not repeat (a late or second one is a splice, not a valid layout).
      if (saw_shard_info_) {
        return fail("wire: duplicate shard-info record in trace file");
      }
      if (records_seen_ != 0) {
        return fail("wire: out-of-order shard-info record in trace file");
      }
      Cursor c = MakeCursor(scratch_);
      uint32_t id = 0;
      if (!c.TakeU32(&id) || !c.AtEnd()) {
        return fail("wire: malformed shard-info record in trace file");
      }
      if (id == 0) {
        return fail("wire: shard-info record with shard id 0 in trace file");
      }
      saw_shard_info_ = true;
      records_seen_++;
      shard_id_ = id;
      continue;
    }
    records_seen_++;
    Result<TraceEvent> decoded = DecodeTraceEvent(type, scratch_, "trace file");
    if (!decoded.ok()) {
      return fail(decoded.error());
    }
    *event = std::move(decoded).value();
    last_payload_offset_ = payload_offset;
    last_payload_bytes_ = scratch_.size();
    last_record_type_ = type;
    return true;
  }
}

Status WriteTraceFile(const std::string& path, const Trace& trace, uint32_t shard_id) {
  TraceWriter writer;
  if (Status st = writer.Open(path, shard_id); !st.ok()) {
    return st;
  }
  for (const TraceEvent& e : trace.events) {
    if (Status st = writer.Append(e); !st.ok()) {
      return st;
    }
  }
  return writer.Finish();
}

Result<Trace> ReadTraceFile(const std::string& path) {
  TraceReader reader;
  if (Status st = reader.Open(path); !st.ok()) {
    return Result<Trace>::Error(st.error());
  }
  Trace trace;
  while (true) {
    TraceEvent e;
    Result<bool> more = reader.Next(&e);
    if (!more.ok()) {
      return Result<Trace>::Error(more.error());
    }
    if (!more.value()) {
      break;
    }
    trace.events.push_back(std::move(e));
  }
  return trace;
}

Result<TraceEvent> DecodeTraceEventPayload(uint8_t record_type, const std::string& payload) {
  return DecodeTraceEvent(record_type, payload, "trace file");
}

// --- Shard manifest files ---

Status WriteShardManifestFile(const std::string& path, const ShardManifest& manifest) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("wire: cannot create " + path);
  }
  Sink sink(f);
  sink.WriteHeader(wire::Section::kManifest);
  std::string payload;
  if (manifest.epoch != 0) {
    PutU64(&payload, manifest.epoch);
    sink.WriteRecord(kRecManifestEpoch, payload);
  }
  for (const ShardManifestEntry& shard : manifest.shards) {
    payload.clear();
    PutU32(&payload, shard.shard_id);
    PutStr(&payload, shard.trace_file);
    PutStr(&payload, shard.reports_file);
    sink.WriteRecord(kRecManifestShard, payload);
  }
  sink.WriteEnd();
  return CloseFile(&f, path, SinkStatus(sink, path));
}

Result<ShardManifest> ReadShardManifestFile(const std::string& path) {
  ShardManifest out;
  bool saw_epoch = false;
  bool saw_shard = false;
  std::set<uint32_t> shard_ids;
  Status st = ReadSectionFile(
      path, wire::Section::kManifest, [&](uint8_t type, const std::string& payload) {
        Cursor c = MakeCursor(payload);
        switch (type) {
          case kRecManifestEpoch:
            // Same in-section header discipline as the trace shard-info record: at most
            // one, and before every shard entry.
            if (saw_epoch) {
              return Status::Error("wire: duplicate epoch record in " + path);
            }
            if (saw_shard) {
              return Status::Error("wire: out-of-order epoch record in " + path);
            }
            saw_epoch = true;
            if (!c.TakeU64(&out.epoch) || !c.AtEnd()) {
              return Status::Error("wire: malformed epoch record in " + path);
            }
            return Status::Ok();
          case kRecManifestShard: {
            saw_shard = true;
            ShardManifestEntry shard;
            if (!c.TakeU32(&shard.shard_id) || !c.TakeStr(&shard.trace_file) ||
                !c.TakeStr(&shard.reports_file) || !c.AtEnd()) {
              return Status::Error("wire: malformed shard record in " + path);
            }
            if (!shard_ids.insert(shard.shard_id).second) {
              return Status::Error("wire: duplicate shard id " +
                                   std::to_string(shard.shard_id) + " in " + path);
            }
            out.shards.push_back(std::move(shard));
            return Status::Ok();
          }
          default:
            return Status::Error("wire: unknown manifest record type " +
                                 std::to_string(type) + " in " + path);
        }
      });
  if (!st.ok()) {
    return Result<ShardManifest>::Error(st.error());
  }
  return out;
}

// --- ReportsWriter / ReportsReader ---

Status ReportsWriter::WriteFile(const std::string& path, const Reports& reports) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("wire: cannot create " + path);
  }
  Sink sink(f);
  WriteReportsToSink(&sink, reports, /*nondet_only=*/false);
  return CloseFile(&f, path, SinkStatus(sink, path));
}

Result<Reports> ReportsReader::ReadFile(const std::string& path) {
  // Drives the same streaming reader + per-record decoder the out-of-core index uses, so
  // the two paths accept exactly the same byte streams with exactly the same errors.
  ReportsRecordReader reader;
  if (Status st = reader.Open(path); !st.ok()) {
    return Result<Reports>::Error(st.error());
  }
  Reports out;
  ReportsDecodeState state;
  uint8_t type = 0;
  std::string payload;
  while (true) {
    Result<bool> more = reader.Next(&type, &payload);
    if (!more.ok()) {
      return Result<Reports>::Error(more.error());
    }
    if (!more.value()) {
      break;
    }
    if (Status st = DecodeReportsRecordPayload(type, payload, path, &state, &out);
        !st.ok()) {
      return Result<Reports>::Error(st.error());
    }
  }
  return out;
}

ReportsRecordReader::~ReportsRecordReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status ReportsRecordReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::Error("wire: ReportsRecordReader already open");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::Error("wire: cannot open " + path);
  }
  path_ = path;
  Status st = ReadHeaderFromFile(file_, wire::Section::kReports, path);
  if (!st.ok()) {
    return CloseFile(&file_, path, st);
  }
  pos_ = kHeaderBytes;
  return Status::Ok();
}

Result<bool> ReportsRecordReader::Next(uint8_t* type, std::string* payload) {
  if (done_) {
    // A clean end stays a clean end on repeated calls; a failure stays sticky.
    if (!error_.empty()) {
      return Result<bool>::Error(error_);
    }
    return false;
  }
  if (file_ == nullptr) {
    return Result<bool>::Error("wire: ReportsRecordReader is not open");
  }
  Result<bool> more = ReadRecordFromFile(file_, path_, type, payload);
  if (!more.ok() || !more.value()) {
    done_ = true;
    Status st =
        CloseFile(&file_, path_, more.ok() ? Status::Ok() : Status::Error(more.error()));
    if (!st.ok()) {
      error_ = st.error();
      return Result<bool>::Error(error_);
    }
    return false;
  }
  last_payload_offset_ = pos_ + kRecordFrameBytes;
  last_payload_bytes_ = payload->size();
  pos_ = last_payload_offset_ + payload->size();
  return true;
}

// --- InitialState files ---

Status WriteInitialStateFile(const std::string& path, const InitialState& state) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("wire: cannot create " + path);
  }
  Sink sink(f);
  WriteStateToSink(&sink, state);
  return CloseFile(&f, path, SinkStatus(sink, path));
}

Result<InitialState> ReadInitialStateFile(const std::string& path) {
  InitialState out;
  bool saw_registers = false;
  bool saw_kv = false;
  Status st = ReadSectionFile(path, wire::Section::kState,
                              [&](uint8_t type, const std::string& payload) {
                                return DecodeStateRecord(type, payload, path, &saw_registers,
                                                         &saw_kv, &out);
                              });
  if (!st.ok()) {
    return Result<InitialState>::Error(st.error());
  }
  return out;
}

// --- exact wire sizes ---

size_t TraceWireBytes(const Trace& trace) {
  // Sum record sizes directly instead of re-encoding: framing + fixed fields + strings.
  size_t bytes = kHeaderBytes + kRecordFrameBytes;  // Header + end record.
  for (const TraceEvent& e : trace.events) {
    bytes += kRecordFrameBytes + 8;  // rid.
    if (e.kind == TraceEvent::Kind::kRequest) {
      bytes += StrWireBytes(e.script) + 4;
      for (const auto& [k, v] : e.params) {
        bytes += StrWireBytes(k) + StrWireBytes(v);
      }
    } else {
      bytes += StrWireBytes(e.body);
    }
  }
  return bytes;
}

size_t ReportsWireBytes(const Reports& reports, bool nondet_only) {
  Sink sink;  // Counting only: same encoder as WriteFile, so the count is exact.
  WriteReportsToSink(&sink, reports, nondet_only);
  return sink.bytes();
}

size_t InitialStateWireBytes(const InitialState& state) {
  Sink sink;
  WriteStateToSink(&sink, state);
  return sink.bytes();
}

// Declared in trace.h / reports.h; defined here next to the encoders they price.
size_t Trace::WireBytes() const { return TraceWireBytes(*this); }

size_t Reports::WireBytes(bool nondet_only) const {
  return ReportsWireBytes(*this, nondet_only);
}

}  // namespace orochi
