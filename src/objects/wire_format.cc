#include "src/objects/wire_format.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "src/common/crc32c.h"
#include "src/common/io_env.h"
#include "src/lang/value.h"
#include "src/objects/wire_primitives.h"

namespace orochi {

namespace {

using wire_primitives::Cursor;
using wire_primitives::MakeCursor;
using wire_primitives::PutF64;
using wire_primitives::PutStr;
using wire_primitives::PutU32;
using wire_primitives::PutU64;
using wire_primitives::PutU8;
using wire_primitives::StrWireBytes;

// A corrupt length prefix must not make the reader attempt a multi-gigabyte allocation.
constexpr uint64_t kMaxRecordBytes = 1ull << 30;

constexpr size_t kHeaderBytes = wire::kEnvelopeHeaderBytes;
constexpr size_t kRecordFrameBytesV1 = 1 /*type*/ + 8 /*length*/;
constexpr size_t kRecordFrameBytesV2 = wire::kRecordFrameBytesV2;

// Trace section record types (public aliases live in wire:: for the point reader).
constexpr uint8_t kRecRequest = wire::kTraceRecRequest;
constexpr uint8_t kRecResponse = wire::kTraceRecResponse;
constexpr uint8_t kRecShardInfo = wire::kTraceRecShardInfo;
// Reports section record types (public aliases live in wire:: for the streaming index).
constexpr uint8_t kRecObject = wire::kReportsRecObject;
constexpr uint8_t kRecOpLog = wire::kReportsRecOpLog;
constexpr uint8_t kRecGroup = wire::kReportsRecGroup;
constexpr uint8_t kRecOpCounts = wire::kReportsRecOpCounts;
constexpr uint8_t kRecNondet = wire::kReportsRecNondet;
constexpr uint8_t kRecOpLogSegment = wire::kReportsRecOpLogSegment;
// rid + opnum + type + contents length prefix: the smallest encodable op-log entry.
constexpr size_t kOpLogEntryMinBytes = 8 + 4 + 1 + 4;
// State section record types.
constexpr uint8_t kRecRegisters = 1;
constexpr uint8_t kRecKv = 2;
constexpr uint8_t kRecDbTable = 3;
// Manifest section record types.
constexpr uint8_t kRecManifestEpoch = 1;
constexpr uint8_t kRecManifestShard = 2;

// --- record sink: writes v2 records to a WritableFile (sticky failure), or counts ---

class Sink {
 public:
  Sink() = default;  // Counting only.
  explicit Sink(WritableFile* f, size_t bytes = 0, uint64_t records = 0)
      : file_(f), bytes_(bytes), records_(records) {}

  void WriteHeader(wire::Section section) {
    Write(wire::EnvelopeHeader(section));
  }

  void WriteRecord(uint8_t type, const std::string& payload) {
    std::string frame;
    PutU8(&frame, type);
    PutU64(&frame, payload.size());
    PutU32(&frame, Crc32c(payload));
    Write(frame);
    Write(payload);
    records_++;
  }

  // The v2 end record carries the footer: the non-end record count and the byte offset
  // where the end record's own frame begins, so a reader proves it saw the whole section.
  void WriteEnd() {
    std::string footer;
    PutU64(&footer, records_);
    PutU64(&footer, bytes_);
    std::string frame;
    PutU8(&frame, wire::kEndRecord);
    PutU64(&frame, footer.size());
    PutU32(&frame, Crc32c(footer));
    Write(frame);
    Write(footer);
  }

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  size_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }

 private:
  void Write(const std::string& s) {
    if (file_ != nullptr && !failed_) {
      if (Status st = file_->Append(s); !st.ok()) {
        failed_ = true;
        error_ = st.error();
      }
    }
    bytes_ += s.size();
  }

  WritableFile* file_ = nullptr;
  bool failed_ = false;
  std::string error_;
  size_t bytes_ = 0;
  uint64_t records_ = 0;
};

Status SinkStatus(const Sink& sink, const std::string& path) {
  if (sink.failed()) {
    return sink.error().empty() ? Status::Error("wire: short write to " + path)
                                : Status::Error(sink.error());
  }
  return Status::Ok();
}

// Validates the 13-byte envelope header against the expected section kind. Fills
// *version with the (accepted) format version.
Status CheckHeader(const unsigned char* h, wire::Section want, const std::string& path,
                   uint32_t* version) {
  if (std::memcmp(h, wire::kMagic, sizeof(wire::kMagic)) != 0) {
    return Status::Error("wire: bad magic in " + path);
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) {
    v |= static_cast<uint32_t>(h[sizeof(wire::kMagic) + i]) << (8 * i);
  }
  if (v < wire::kMinFormatVersion || v > wire::kFormatVersion) {
    return Status::Error("wire: unsupported format version " + std::to_string(v) + " in " +
                         path);
  }
  *version = v;
  uint8_t section = h[sizeof(wire::kMagic) + 4];
  if (section != static_cast<uint8_t>(want)) {
    return Status::Error("wire: " + path + " holds section kind " + std::to_string(section) +
                         ", expected " + std::to_string(static_cast<int>(want)));
  }
  return Status::Ok();
}

}  // namespace

namespace wire {

std::string EnvelopeHeader(Section section) {
  std::string h;
  h.append(kMagic, sizeof(kMagic));
  wire_primitives::PutU32(&h, kFormatVersion);
  wire_primitives::PutU8(&h, static_cast<uint8_t>(section));
  return h;
}

void AppendRecordFrame(std::string* out, uint8_t type, const std::string& payload) {
  wire_primitives::PutU8(out, type);
  wire_primitives::PutU64(out, payload.size());
  wire_primitives::PutU32(out, Crc32c(payload));
  out->append(payload);
}

bool ParseRecordFrameV2(const char* data, size_t n, uint8_t* type, uint64_t* len,
                        uint32_t* crc) {
  if (n < kRecordFrameBytesV2) {
    return false;
  }
  wire_primitives::Cursor c{reinterpret_cast<const unsigned char*>(data), n};
  return c.TakeU8(type) && c.TakeU64(len) && c.TakeU32(crc);
}

void AppendEndRecordFrame(std::string* out, uint64_t records, uint64_t end_offset) {
  // Byte-identical to Sink::WriteEnd: the footer proves a reader saw the whole section.
  std::string footer;
  wire_primitives::PutU64(&footer, records);
  wire_primitives::PutU64(&footer, end_offset);
  AppendRecordFrame(out, kEndRecord, footer);
}

// Version-aware record stream over one open section file: validates the envelope header
// on Open, then yields records until the end record, verifying per-record CRCs and the
// footer for v2 files. All reads retry transient faults (ReadFullAt); every error names
// the file and the byte offset, so corruption localizes to an exact record.
class RecordStream {
 public:
  Status Open(Env* env, const std::string& path, Section want) {
    path_ = path;
    Result<std::unique_ptr<ReadableFile>> f = ResolveEnv(env)->OpenRead(path);
    if (!f.ok()) {
      return Status::Error(f.error());
    }
    file_ = std::move(f).value();
    unsigned char h[kEnvelopeHeaderBytes];
    Result<size_t> got = ReadUpToAt(file_.get(), path_, 0, sizeof(h),
                                    reinterpret_cast<char*>(h));
    if (!got.ok()) {
      return Status::Error(got.error());
    }
    if (got.value() != sizeof(h)) {
      return Status::Error("wire: truncated header in " + path_);
    }
    if (Status st = CheckHeader(h, want, path_, &version_); !st.ok()) {
      return st;
    }
    pos_ = kEnvelopeHeaderBytes;
    return Status::Ok();
  }

  // True: *type/*payload hold the next record. False: end record consumed and validated
  // (footer counts for v2, no trailing bytes either way).
  Result<bool> Next(uint8_t* type, std::string* payload) {
    const size_t frame_bytes =
        version_ >= 2 ? kRecordFrameBytesV2 : kRecordFrameBytesV1;
    const uint64_t frame_start = pos_;
    unsigned char frame[kRecordFrameBytesV2];
    Result<size_t> got = ReadUpToAt(file_.get(), path_, frame_start, frame_bytes,
                                    reinterpret_cast<char*>(frame));
    if (!got.ok()) {
      return Result<bool>::Error(got.error());
    }
    if (got.value() != frame_bytes) {
      return Result<bool>::Error("wire: truncated record frame at offset " +
                                 std::to_string(frame_start) + " in " + path_);
    }
    *type = frame[0];
    uint64_t len = 0;
    for (int i = 0; i < 8; i++) {
      len |= static_cast<uint64_t>(frame[1 + i]) << (8 * i);
    }
    uint32_t crc = 0;
    if (version_ >= 2) {
      for (int i = 0; i < 4; i++) {
        crc |= static_cast<uint32_t>(frame[9 + i]) << (8 * i);
      }
    }
    if (*type == kEndRecord) {
      return FinishAtEnd(frame_start, len, crc);
    }
    if (len > kMaxRecordBytes) {
      return Result<bool>::Error("wire: record length " + std::to_string(len) +
                                 " exceeds limit in " + path_);
    }
    const uint64_t payload_offset = frame_start + frame_bytes;
    payload->resize(static_cast<size_t>(len));
    if (len > 0) {
      Result<size_t> body = ReadUpToAt(file_.get(), path_, payload_offset,
                                       payload->size(), &(*payload)[0]);
      if (!body.ok()) {
        return Result<bool>::Error(body.error());
      }
      if (body.value() != payload->size()) {
        return Result<bool>::Error("wire: truncated record payload at offset " +
                                   std::to_string(payload_offset) + " in " + path_);
      }
    }
    const uint32_t payload_crc = Crc32c(*payload);
    if (version_ >= 2 && payload_crc != crc) {
      return Result<bool>::Error(
          "wire: crc mismatch in record " + std::to_string(records_) + " (type " +
          std::to_string(*type) + ") at offset " + std::to_string(frame_start) + " in " +
          path_);
    }
    pos_ = payload_offset + payload->size();
    records_++;
    last_payload_offset_ = payload_offset;
    last_crc_ = payload_crc;
    return true;
  }

  uint32_t version() const { return version_; }
  const std::string& path() const { return path_; }
  uint64_t last_payload_offset() const { return last_payload_offset_; }
  uint32_t last_crc() const { return last_crc_; }

 private:
  Result<bool> FinishAtEnd(uint64_t frame_start, uint64_t len, uint32_t crc) {
    uint64_t after;  // Offset of the first byte past the section.
    if (version_ >= 2) {
      if (len != kFooterPayloadBytes) {
        return Result<bool>::Error("wire: malformed end record at offset " +
                                   std::to_string(frame_start) + " in " + path_);
      }
      char footer[kFooterPayloadBytes];
      const uint64_t footer_offset = frame_start + kRecordFrameBytesV2;
      Result<size_t> got =
          ReadUpToAt(file_.get(), path_, footer_offset, sizeof(footer), footer);
      if (!got.ok()) {
        return Result<bool>::Error(got.error());
      }
      if (got.value() != sizeof(footer)) {
        return Result<bool>::Error("wire: truncated footer in " + path_);
      }
      if (Crc32c(footer, sizeof(footer)) != crc) {
        return Result<bool>::Error("wire: crc mismatch in footer of " + path_);
      }
      Cursor c{reinterpret_cast<const unsigned char*>(footer), sizeof(footer)};
      uint64_t record_count = 0, end_offset = 0;
      (void)c.TakeU64(&record_count);
      (void)c.TakeU64(&end_offset);
      if (record_count != records_) {
        return Result<bool>::Error(
            "wire: footer record count " + std::to_string(record_count) + " != " +
            std::to_string(records_) + " records read in " + path_);
      }
      if (end_offset != frame_start) {
        return Result<bool>::Error("wire: footer end-offset mismatch in " + path_);
      }
      after = footer_offset + sizeof(footer);
    } else {
      if (len != 0) {
        return Result<bool>::Error("wire: end record with nonzero length in " + path_);
      }
      after = frame_start + kRecordFrameBytesV1;
    }
    char probe;
    Result<size_t> trailing = ReadUpToAt(file_.get(), path_, after, 1, &probe);
    if (!trailing.ok()) {
      return Result<bool>::Error(trailing.error());
    }
    if (trailing.value() != 0) {
      return Result<bool>::Error("wire: trailing bytes after end record in " + path_);
    }
    return false;
  }

  std::unique_ptr<ReadableFile> file_;
  std::string path_;
  uint32_t version_ = 0;
  uint64_t pos_ = 0;      // File offset of the next record frame.
  uint64_t records_ = 0;  // Non-end records yielded so far.
  uint64_t last_payload_offset_ = 0;
  uint32_t last_crc_ = 0;
};

}  // namespace wire

namespace {

// --- trace event payloads ---

uint8_t TraceEventRecordType(const TraceEvent& e) {
  return e.kind == TraceEvent::Kind::kRequest ? kRecRequest : kRecResponse;
}

void EncodeTraceEvent(const TraceEvent& e, std::string* out) {
  out->clear();
  PutU64(out, e.rid);
  if (e.kind == TraceEvent::Kind::kRequest) {
    PutStr(out, e.script);
    PutU32(out, static_cast<uint32_t>(e.params.size()));
    for (const auto& [k, v] : e.params) {
      PutStr(out, k);
      PutStr(out, v);
    }
  } else {
    PutStr(out, e.body);
  }
}

Result<TraceEvent> DecodeTraceEvent(uint8_t type, const std::string& payload,
                                    const std::string& path) {
  TraceEvent e;
  Cursor c = MakeCursor(payload);
  if (type == kRecRequest) {
    e.kind = TraceEvent::Kind::kRequest;
    uint32_t nparams = 0;
    if (!c.TakeU64(&e.rid) || !c.TakeStr(&e.script) || !c.TakeU32(&nparams)) {
      return Result<TraceEvent>::Error("wire: malformed request record in " + path);
    }
    for (uint32_t i = 0; i < nparams; i++) {
      std::string k, v;
      if (!c.TakeStr(&k) || !c.TakeStr(&v)) {
        return Result<TraceEvent>::Error("wire: malformed request params in " + path);
      }
      e.params[std::move(k)] = std::move(v);
    }
  } else if (type == kRecResponse) {
    e.kind = TraceEvent::Kind::kResponse;
    if (!c.TakeU64(&e.rid) || !c.TakeStr(&e.body)) {
      return Result<TraceEvent>::Error("wire: malformed response record in " + path);
    }
  } else {
    return Result<TraceEvent>::Error("wire: unknown trace record type " +
                                     std::to_string(type) + " in " + path);
  }
  if (!c.AtEnd()) {
    return Result<TraceEvent>::Error("wire: trailing bytes in trace record in " + path);
  }
  return e;
}

// --- reports section encode ---

// One canonical record enumeration backs the file writer, the exact byte accounting, and
// the public ForEachReportsRecord used by the network sending side.
void EnumerateReportsRecords(const Reports& reports, bool nondet_only,
                             const std::function<void(uint8_t, const std::string&)>& fn) {
  std::string payload;
  if (!nondet_only) {
    for (const ObjectDesc& d : reports.objects) {
      payload.clear();
      PutU8(&payload, static_cast<uint8_t>(d.kind));
      PutStr(&payload, d.name);
      fn(kRecObject, payload);
    }
    for (size_t i = 0; i < reports.op_logs.size(); i++) {
      const std::vector<OpRecord>& log = reports.op_logs[i];
      if (log.empty()) {
        continue;
      }
      uint64_t total_entry_bytes = 0;
      for (const OpRecord& op : log) {
        total_entry_bytes += kOpLogEntryMinBytes + op.contents.size();
      }
      if (total_entry_bytes <= wire::kMaxOpLogSegmentBytes) {
        // Small log: the classic monolithic record, byte-identical to a v2 writer.
        payload.clear();
        PutU32(&payload, static_cast<uint32_t>(i));
        PutU64(&payload, log.size());
        for (const OpRecord& op : log) {
          PutU64(&payload, op.rid);
          PutU32(&payload, op.opnum);
          PutU8(&payload, static_cast<uint8_t>(op.type));
          PutStr(&payload, op.contents);
        }
        fn(kRecOpLog, payload);
        continue;
      }
      // Hot object: split across byte-capped segments so no reader ever has to hold the
      // whole log's record resident. A single entry over the cap rides alone.
      uint32_t segment_seq = 0;
      uint64_t first_seqnum = 1;
      size_t next = 0;
      while (next < log.size()) {
        payload.clear();
        PutU32(&payload, static_cast<uint32_t>(i));
        PutU32(&payload, segment_seq);
        PutU64(&payload, first_seqnum);
        const size_t count_pos = payload.size();
        PutU64(&payload, 0);  // Entry count, patched once the segment is sealed.
        uint64_t count = 0;
        // The cap bounds the whole record payload a reader must hold resident, so the
        // segment preamble written above counts against it too — not just entry bytes.
        uint64_t entry_bytes = payload.size();
        while (next < log.size()) {
          const OpRecord& op = log[next];
          const uint64_t one = kOpLogEntryMinBytes + op.contents.size();
          if (count > 0 && entry_bytes + one > wire::kMaxOpLogSegmentBytes) {
            break;
          }
          PutU64(&payload, op.rid);
          PutU32(&payload, op.opnum);
          PutU8(&payload, static_cast<uint8_t>(op.type));
          PutStr(&payload, op.contents);
          entry_bytes += one;
          count++;
          next++;
        }
        for (int b = 0; b < 8; b++) {
          payload[count_pos + b] = static_cast<char>((count >> (8 * b)) & 0xff);
        }
        fn(kRecOpLogSegment, payload);
        first_seqnum += count;
        segment_seq++;
      }
    }
    for (const auto& [tag, rids] : reports.groups) {
      payload.clear();
      PutU64(&payload, tag);
      PutU64(&payload, rids.size());
      for (RequestId rid : rids) {
        PutU64(&payload, rid);
      }
      fn(kRecGroup, payload);
    }
    // unordered_map -> sorted so the encoding (and its byte count) is canonical.
    std::vector<std::pair<RequestId, uint32_t>> counts(reports.op_counts.begin(),
                                                       reports.op_counts.end());
    std::sort(counts.begin(), counts.end());
    payload.clear();
    PutU64(&payload, counts.size());
    for (const auto& [rid, count] : counts) {
      PutU64(&payload, rid);
      PutU32(&payload, count);
    }
    fn(kRecOpCounts, payload);
  }
  std::vector<RequestId> nondet_rids;
  nondet_rids.reserve(reports.nondet.size());
  for (const auto& [rid, records] : reports.nondet) {
    (void)records;
    nondet_rids.push_back(rid);
  }
  std::sort(nondet_rids.begin(), nondet_rids.end());
  for (RequestId rid : nondet_rids) {
    const std::vector<NondetRecord>& records = reports.nondet.at(rid);
    payload.clear();
    PutU64(&payload, rid);
    PutU32(&payload, static_cast<uint32_t>(records.size()));
    for (const NondetRecord& r : records) {
      PutStr(&payload, r.name);
      PutStr(&payload, r.value);
    }
    fn(kRecNondet, payload);
  }
}

void WriteReportsToSink(Sink* sink, const Reports& reports, bool nondet_only) {
  sink->WriteHeader(wire::Section::kReports);
  EnumerateReportsRecords(reports, nondet_only, [&](uint8_t type, const std::string& payload) {
    sink->WriteRecord(type, payload);
  });
  sink->WriteEnd();
}

// Writes one whole section atomically: temp file + fsync + rename-into-place.
template <typename WriteFn>
Status WriteSectionFileAtomically(const std::string& path, Env* env, WriteFn&& write_fn) {
  AtomicFileWriter atomic;
  if (Status st = atomic.Open(env, path); !st.ok()) {
    return st;
  }
  Sink sink(atomic.file());
  write_fn(&sink);
  if (Status st = SinkStatus(sink, path); !st.ok()) {
    return st;
  }
  return atomic.Commit();
}

}  // namespace

// One decoder for both the in-memory reader and the streaming index (declared in the
// header; ReportsDecodeState carries the cross-record validation). Beyond the
// single-occurrence op-counts flag, it enforces the object table's header discipline:
// object records declare the id space every later record indexes into, so they must all
// precede the first non-object record (out-of-order declarations could retroactively
// legitimize an op-log already rejected), and no (kind, name) descriptor may be declared
// twice (FindObject resolves a descriptor to one id; a duplicate would let two distinct
// byte streams decode to the same Reports).
Status DecodeReportsRecordPayload(uint8_t type, const std::string& payload,
                                  const std::string& path, ReportsDecodeState* state,
                                  Reports* out) {
  Cursor c = MakeCursor(payload);
  if (type != kRecObject) {
    state->saw_non_object = true;
  }
  switch (type) {
    case kRecObject: {
      uint8_t kind;
      std::string name;
      if (!c.TakeU8(&kind) || !c.TakeStr(&name) || !c.AtEnd()) {
        return Status::Error("wire: malformed object record in " + path);
      }
      if (kind > static_cast<uint8_t>(ObjectKind::kDb)) {
        return Status::Error("wire: unknown object kind " + std::to_string(kind) + " in " +
                             path);
      }
      if (state->saw_non_object) {
        return Status::Error("wire: out-of-order object record in " + path);
      }
      if (!state->declared.emplace(kind, name).second) {
        return Status::Error("wire: duplicate object record for '" + name + "' in " + path);
      }
      out->objects.push_back({static_cast<ObjectKind>(kind), std::move(name)});
      out->op_logs.emplace_back();
      return Status::Ok();
    }
    case kRecOpLog: {
      uint32_t object = 0;
      uint64_t count = 0;
      if (!c.TakeU32(&object) || !c.TakeU64(&count)) {
        return Status::Error("wire: malformed op-log record in " + path);
      }
      if (object >= out->op_logs.size()) {
        return Status::Error("wire: op-log for unknown object id " + std::to_string(object) +
                             " in " + path);
      }
      std::vector<OpRecord>& log = out->op_logs[object];
      if (state->segments.count(object) > 0) {
        return Status::Error("wire: monolithic op-log record for segmented object id " +
                             std::to_string(object) + " in " + path);
      }
      if (!log.empty()) {
        return Status::Error("wire: duplicate op-log record for object id " +
                             std::to_string(object) + " in " + path);
      }
      if (!c.CountFits(count, 8 + 4 + 1 + 4)) {  // rid + opnum + type + empty contents.
        return Status::Error("wire: op-log count " + std::to_string(count) +
                             " exceeds payload in " + path);
      }
      log.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; i++) {
        OpRecord op;
        uint8_t optype;
        if (!c.TakeU64(&op.rid) || !c.TakeU32(&op.opnum) || !c.TakeU8(&optype) ||
            !c.TakeStr(&op.contents)) {
          return Status::Error("wire: malformed op record in " + path);
        }
        if (optype > static_cast<uint8_t>(StateOpType::kDbOp)) {
          return Status::Error("wire: unknown op type " + std::to_string(optype) + " in " +
                               path);
        }
        op.type = static_cast<StateOpType>(optype);
        log.push_back(std::move(op));
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in op-log record in " + path);
      }
      return Status::Ok();
    }
    case kRecOpLogSegment: {
      OpLogSegmentHeader h;
      if (!c.TakeU32(&h.object) || !c.TakeU32(&h.segment_seq) ||
          !c.TakeU64(&h.first_seqnum) || !c.TakeU64(&h.count)) {
        return Status::Error("wire: malformed op-log segment record in " + path);
      }
      if (h.object >= out->op_logs.size()) {
        return Status::Error("wire: op-log segment for unknown object id " +
                             std::to_string(h.object) + " in " + path);
      }
      std::vector<OpRecord>& log = out->op_logs[h.object];
      auto it = state->segments.find(h.object);
      const uint32_t expected_seq = it == state->segments.end() ? 0 : it->second;
      if (it == state->segments.end() && !log.empty()) {
        return Status::Error("wire: op-log segment for monolithic object id " +
                             std::to_string(h.object) + " in " + path);
      }
      if (h.segment_seq != expected_seq) {
        return Status::Error("wire: op-log segment " + std::to_string(h.segment_seq) +
                             " out of order for object id " + std::to_string(h.object) +
                             " (expected " + std::to_string(expected_seq) + ") in " + path);
      }
      if (h.count == 0) {
        // The writer never seals an empty segment; accepting one would let two distinct
        // byte streams decode to the same Reports.
        return Status::Error("wire: empty op-log segment for object id " +
                             std::to_string(h.object) + " in " + path);
      }
      if (h.first_seqnum != log.size() + 1) {
        return Status::Error("wire: op-log segment entry range for object id " +
                             std::to_string(h.object) + " starts at seqnum " +
                             std::to_string(h.first_seqnum) + ", expected " +
                             std::to_string(log.size() + 1) + " in " + path);
      }
      if (!c.CountFits(h.count, kOpLogEntryMinBytes)) {
        return Status::Error("wire: op-log segment count " + std::to_string(h.count) +
                             " exceeds payload in " + path);
      }
      log.reserve(log.size() + static_cast<size_t>(h.count));
      for (uint64_t i = 0; i < h.count; i++) {
        OpRecord op;
        uint8_t optype;
        if (!c.TakeU64(&op.rid) || !c.TakeU32(&op.opnum) || !c.TakeU8(&optype) ||
            !c.TakeStr(&op.contents)) {
          return Status::Error("wire: malformed op record in " + path);
        }
        if (optype > static_cast<uint8_t>(StateOpType::kDbOp)) {
          return Status::Error("wire: unknown op type " + std::to_string(optype) + " in " +
                               path);
        }
        op.type = static_cast<StateOpType>(optype);
        log.push_back(std::move(op));
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in op-log segment record in " + path);
      }
      state->segments[h.object] = expected_seq + 1;
      return Status::Ok();
    }
    case kRecGroup: {
      uint64_t tag = 0, count = 0;
      if (!c.TakeU64(&tag) || !c.TakeU64(&count)) {
        return Status::Error("wire: malformed group record in " + path);
      }
      if (out->groups.count(tag) > 0) {
        return Status::Error("wire: duplicate group tag " + std::to_string(tag) + " in " +
                             path);
      }
      if (!c.CountFits(count, 8)) {
        return Status::Error("wire: group size " + std::to_string(count) +
                             " exceeds payload in " + path);
      }
      std::vector<RequestId>& rids = out->groups[tag];
      rids.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; i++) {
        RequestId rid;
        if (!c.TakeU64(&rid)) {
          return Status::Error("wire: malformed group record in " + path);
        }
        rids.push_back(rid);
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in group record in " + path);
      }
      return Status::Ok();
    }
    case kRecOpCounts: {
      // The writer emits exactly one op-counts record; accepting several would let two
      // distinct byte streams decode to the same Reports.
      if (state->saw_op_counts) {
        return Status::Error("wire: duplicate op-counts record in " + path);
      }
      state->saw_op_counts = true;
      uint64_t count = 0;
      if (!c.TakeU64(&count)) {
        return Status::Error("wire: malformed op-counts record in " + path);
      }
      for (uint64_t i = 0; i < count; i++) {
        RequestId rid;
        uint32_t ops;
        if (!c.TakeU64(&rid) || !c.TakeU32(&ops)) {
          return Status::Error("wire: malformed op-counts record in " + path);
        }
        if (!out->op_counts.emplace(rid, ops).second) {
          return Status::Error("wire: duplicate op count for rid " + std::to_string(rid) +
                               " in " + path);
        }
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in op-counts record in " + path);
      }
      return Status::Ok();
    }
    case kRecNondet: {
      RequestId rid;
      uint32_t count = 0;
      if (!c.TakeU64(&rid) || !c.TakeU32(&count)) {
        return Status::Error("wire: malformed nondet record in " + path);
      }
      if (out->nondet.count(rid) > 0) {
        return Status::Error("wire: duplicate nondet record for rid " + std::to_string(rid) +
                             " in " + path);
      }
      if (!c.CountFits(count, 4 + 4)) {  // Two empty strings.
        return Status::Error("wire: nondet count " + std::to_string(count) +
                             " exceeds payload in " + path);
      }
      std::vector<NondetRecord>& records = out->nondet[rid];
      records.reserve(count);
      for (uint32_t i = 0; i < count; i++) {
        NondetRecord r;
        if (!c.TakeStr(&r.name) || !c.TakeStr(&r.value)) {
          return Status::Error("wire: malformed nondet record in " + path);
        }
        records.push_back(std::move(r));
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in nondet record in " + path);
      }
      return Status::Ok();
    }
    default:
      return Status::Error("wire: unknown reports record type " + std::to_string(type) +
                           " in " + path);
  }
}

std::vector<OpLogEntrySpan> IndexOpLogEntries(const std::string& payload) {
  std::vector<OpLogEntrySpan> spans;
  Cursor c = MakeCursor(payload);
  uint32_t object = 0;
  uint64_t count = 0;
  if (!c.TakeU32(&object) || !c.TakeU64(&count) ||
      !c.CountFits(count, 8 + 4 + 1 + 4)) {
    return spans;
  }
  spans.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; i++) {
    OpLogEntrySpan span;
    span.offset = c.pos;
    uint64_t rid = 0;
    uint32_t opnum = 0;
    uint8_t optype = 0;
    if (!c.TakeU64(&rid) || !c.TakeU32(&opnum) || !c.TakeU8(&optype) || !c.SkipStr()) {
      spans.clear();
      return spans;
    }
    span.bytes = c.pos - span.offset;
    spans.push_back(span);
  }
  return spans;
}

std::vector<OpLogEntrySpan> IndexOpLogSegmentEntries(const std::string& payload,
                                                     OpLogSegmentHeader* header) {
  std::vector<OpLogEntrySpan> spans;
  Cursor c = MakeCursor(payload);
  if (!c.TakeU32(&header->object) || !c.TakeU32(&header->segment_seq) ||
      !c.TakeU64(&header->first_seqnum) || !c.TakeU64(&header->count) ||
      !c.CountFits(header->count, 8 + 4 + 1 + 4)) {
    return spans;
  }
  spans.reserve(static_cast<size_t>(header->count));
  for (uint64_t i = 0; i < header->count; i++) {
    OpLogEntrySpan span;
    span.offset = c.pos;
    uint64_t rid = 0;
    uint32_t opnum = 0;
    uint8_t optype = 0;
    if (!c.TakeU64(&rid) || !c.TakeU32(&opnum) || !c.TakeU8(&optype) || !c.SkipStr()) {
      spans.clear();
      return spans;
    }
    span.bytes = c.pos - span.offset;
    spans.push_back(span);
  }
  return spans;
}

Status DecodeOpLogEntry(const char* data, size_t size, OpRecord* out) {
  Cursor c{reinterpret_cast<const unsigned char*>(data), size};
  uint8_t optype = 0;
  if (!c.TakeU64(&out->rid) || !c.TakeU32(&out->opnum) || !c.TakeU8(&optype) ||
      !c.TakeStr(&out->contents) || !c.AtEnd()) {
    return Status::Error("wire: malformed op-log entry slice");
  }
  if (optype > static_cast<uint8_t>(StateOpType::kDbOp)) {
    return Status::Error("wire: unknown op type in op-log entry slice");
  }
  out->type = static_cast<StateOpType>(optype);
  return Status::Ok();
}

namespace {

// --- state section encode ---

void EncodeValueMap(const std::map<std::string, Value>& m, std::string* out) {
  PutU64(out, m.size());
  for (const auto& [name, v] : m) {
    PutStr(out, name);
    PutStr(out, v.Serialize());
  }
}

Status DecodeValueMap(Cursor* c, const std::string& what, const std::string& path,
                      std::map<std::string, Value>* out) {
  uint64_t count = 0;
  if (!c->TakeU64(&count)) {
    return Status::Error("wire: malformed " + what + " record in " + path);
  }
  for (uint64_t i = 0; i < count; i++) {
    std::string name, bytes;
    if (!c->TakeStr(&name) || !c->TakeStr(&bytes)) {
      return Status::Error("wire: malformed " + what + " record in " + path);
    }
    Result<Value> v = DeserializeValue(bytes);
    if (!v.ok()) {
      return Status::Error("wire: bad " + what + " value for '" + name + "' in " + path +
                           ": " + v.error());
    }
    if (!out->emplace(std::move(name), std::move(v).value()).second) {
      return Status::Error("wire: duplicate " + what + " entry in " + path);
    }
  }
  if (!c->AtEnd()) {
    return Status::Error("wire: trailing bytes in " + what + " record in " + path);
  }
  return Status::Ok();
}

void EncodeSqlCell(const SqlValue& v, std::string* out) {
  if (v.is_null()) {
    PutU8(out, 0);
  } else if (v.is_int()) {
    PutU8(out, 1);
    PutU64(out, static_cast<uint64_t>(v.as_int()));
  } else if (v.is_float()) {
    PutU8(out, 2);
    PutF64(out, v.as_float());
  } else {
    PutU8(out, 3);
    PutStr(out, v.as_text());
  }
}

bool DecodeSqlCell(Cursor* c, SqlValue* out) {
  uint8_t tag;
  if (!c->TakeU8(&tag)) {
    return false;
  }
  switch (tag) {
    case 0:
      *out = SqlValue::Null();
      return true;
    case 1: {
      uint64_t bits;
      if (!c->TakeU64(&bits)) {
        return false;
      }
      *out = SqlValue::Int(static_cast<int64_t>(bits));
      return true;
    }
    case 2: {
      double d;
      if (!c->TakeF64(&d)) {
        return false;
      }
      *out = SqlValue::Float(d);
      return true;
    }
    case 3: {
      std::string s;
      if (!c->TakeStr(&s)) {
        return false;
      }
      *out = SqlValue::Text(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

void WriteStateToSink(Sink* sink, const InitialState& state) {
  sink->WriteHeader(wire::Section::kState);
  std::string payload;
  payload.clear();
  EncodeValueMap(state.registers, &payload);
  sink->WriteRecord(kRecRegisters, payload);
  payload.clear();
  EncodeValueMap(state.kv, &payload);
  sink->WriteRecord(kRecKv, payload);
  for (const std::string& table : state.db.TableNames()) {
    const std::vector<ColumnDef>* schema = state.db.Schema(table);
    const std::vector<SqlRow>* rows = state.db.Rows(table);
    payload.clear();
    PutStr(&payload, table);
    PutU32(&payload, schema == nullptr ? 0 : static_cast<uint32_t>(schema->size()));
    if (schema != nullptr) {
      for (const ColumnDef& col : *schema) {
        PutStr(&payload, col.name);
        PutU8(&payload, static_cast<uint8_t>(col.type));
      }
    }
    PutU64(&payload, rows == nullptr ? 0 : rows->size());
    if (rows != nullptr) {
      for (const SqlRow& row : *rows) {
        for (const SqlValue& cell : row) {
          EncodeSqlCell(cell, &payload);
        }
      }
    }
    sink->WriteRecord(kRecDbTable, payload);
  }
  sink->WriteEnd();
}

Status DecodeStateRecord(uint8_t type, const std::string& payload, const std::string& path,
                         bool* saw_registers, bool* saw_kv, InitialState* out) {
  Cursor c = MakeCursor(payload);
  switch (type) {
    case kRecRegisters:
      if (*saw_registers) {
        return Status::Error("wire: duplicate registers record in " + path);
      }
      *saw_registers = true;
      return DecodeValueMap(&c, "register", path, &out->registers);
    case kRecKv:
      if (*saw_kv) {
        return Status::Error("wire: duplicate kv record in " + path);
      }
      *saw_kv = true;
      return DecodeValueMap(&c, "kv", path, &out->kv);
    case kRecDbTable: {
      std::string table;
      uint32_t ncols = 0;
      if (!c.TakeStr(&table) || !c.TakeU32(&ncols)) {
        return Status::Error("wire: malformed table record in " + path);
      }
      // Each column costs at least its length-prefixed name + 1-byte type tag.
      if (!c.CountFits(ncols, 4 + 1)) {
        return Status::Error("wire: table column count " + std::to_string(ncols) +
                             " exceeds payload in " + path);
      }
      std::vector<ColumnDef> schema;
      schema.reserve(ncols);
      for (uint32_t i = 0; i < ncols; i++) {
        ColumnDef col;
        uint8_t sqltype;
        if (!c.TakeStr(&col.name) || !c.TakeU8(&sqltype)) {
          return Status::Error("wire: malformed table schema in " + path);
        }
        if (sqltype > static_cast<uint8_t>(SqlType::kText)) {
          return Status::Error("wire: unknown SQL type " + std::to_string(sqltype) + " in " +
                               path);
        }
        col.type = static_cast<SqlType>(sqltype);
        schema.push_back(std::move(col));
      }
      uint64_t nrows = 0;
      if (!c.TakeU64(&nrows)) {
        return Status::Error("wire: malformed table record in " + path);
      }
      // Each cell costs at least its 1-byte tag, so a row costs at least ncols bytes; a
      // zero-width schema admits no rows at all (otherwise the row loop would consume no
      // payload and a forged nrows could spin it unbounded).
      if (ncols == 0 ? nrows > 0 : !c.CountFits(nrows, ncols)) {
        return Status::Error("wire: table row count " + std::to_string(nrows) +
                             " exceeds payload in " + path);
      }
      std::vector<SqlRow> rows;
      rows.reserve(static_cast<size_t>(nrows));
      for (uint64_t r = 0; r < nrows; r++) {
        SqlRow row;
        row.reserve(ncols);
        for (uint32_t i = 0; i < ncols; i++) {
          SqlValue cell;
          if (!DecodeSqlCell(&c, &cell)) {
            return Status::Error("wire: malformed table row in " + path);
          }
          row.push_back(std::move(cell));
        }
        rows.push_back(std::move(row));
      }
      if (!c.AtEnd()) {
        return Status::Error("wire: trailing bytes in table record in " + path);
      }
      if (Status st = out->db.LoadTable(table, std::move(schema), std::move(rows));
          !st.ok()) {
        return Status::Error("wire: " + st.error() + " in " + path);
      }
      return Status::Ok();
    }
    default:
      return Status::Error("wire: unknown state record type " + std::to_string(type) +
                           " in " + path);
  }
}

// Drives the record loop shared by the reports, state, and manifest readers.
template <typename Fn>
Status ReadSectionFile(const std::string& path, wire::Section section, Env* env,
                       Fn&& on_record) {
  wire::RecordStream stream;
  if (Status st = stream.Open(env, path, section); !st.ok()) {
    return st;
  }
  std::string payload;
  while (true) {
    uint8_t type = 0;
    Result<bool> more = stream.Next(&type, &payload);
    if (!more.ok()) {
      return Status::Error(more.error());
    }
    if (!more.value()) {
      return Status::Ok();
    }
    if (Status st = on_record(type, payload); !st.ok()) {
      return st;
    }
  }
}

}  // namespace

// --- TraceWriter / TraceReader ---

TraceWriter::~TraceWriter() = default;

Status TraceWriter::Open(const std::string& path, uint32_t shard_id, Env* env) {
  if (open_) {
    return Status::Error("wire: TraceWriter already open");
  }
  if (Status st = atomic_.Open(env, path); !st.ok()) {
    return st;
  }
  open_ = true;
  path_ = path;
  bytes_ = 0;
  records_ = 0;
  error_.clear();
  Sink sink(atomic_.file(), bytes_, records_);
  sink.WriteHeader(wire::Section::kTrace);
  if (shard_id != 0) {
    std::string payload;
    PutU32(&payload, shard_id);
    sink.WriteRecord(kRecShardInfo, payload);
  }
  bytes_ = sink.bytes();
  records_ = sink.records();
  if (Status st = SinkStatus(sink, path_); !st.ok()) {
    error_ = st.error();
    return st;
  }
  return Status::Ok();
}

Status TraceWriter::Append(const TraceEvent& event) {
  if (!open_) {
    return Status::Error("wire: TraceWriter is not open");
  }
  if (!error_.empty()) {
    return Status::Error(error_);
  }
  EncodeTraceEvent(event, &scratch_);
  Sink sink(atomic_.file(), bytes_, records_);
  sink.WriteRecord(TraceEventRecordType(event), scratch_);
  bytes_ = sink.bytes();
  records_ = sink.records();
  if (Status st = SinkStatus(sink, path_); !st.ok()) {
    error_ = st.error();
    return st;
  }
  return Status::Ok();
}

Status TraceWriter::Finish() {
  if (!open_) {
    return Status::Error("wire: TraceWriter is not open");
  }
  if (!error_.empty()) {
    return Status::Error(error_);
  }
  Sink sink(atomic_.file(), bytes_, records_);
  sink.WriteEnd();
  bytes_ = sink.bytes();
  open_ = false;  // One way or another, this writer is finished.
  if (Status st = SinkStatus(sink, path_); !st.ok()) {
    error_ = st.error();
    return st;
  }
  return atomic_.Commit();
}

TraceReader::TraceReader() = default;

TraceReader::~TraceReader() = default;

Status TraceReader::Open(const std::string& path, Env* env) {
  if (stream_ != nullptr) {
    return Status::Error("wire: TraceReader already open");
  }
  auto stream = std::make_unique<wire::RecordStream>();
  if (Status st = stream->Open(env, path, wire::Section::kTrace); !st.ok()) {
    return st;
  }
  stream_ = std::move(stream);
  return Status::Ok();
}

Result<bool> TraceReader::Next(TraceEvent* event) {
  if (done_) {
    // A clean end stays a clean end on repeated calls; a failure stays sticky.
    if (!error_.empty()) {
      return Result<bool>::Error(error_);
    }
    return false;
  }
  if (stream_ == nullptr) {
    return Result<bool>::Error("wire: TraceReader is not open");
  }
  auto fail = [&](const std::string& message) {
    done_ = true;
    stream_.reset();
    error_ = message;
    return Result<bool>::Error(error_);
  };
  while (true) {
    uint8_t type = 0;
    Result<bool> more = stream_->Next(&type, &scratch_);
    if (!more.ok()) {
      return fail(more.error());
    }
    if (!more.value()) {
      done_ = true;
      stream_.reset();
      return false;
    }
    if (type == kRecShardInfo) {
      // An in-section header: positional like the envelope header, so it must come first
      // and must not repeat (a late or second one is a splice, not a valid layout).
      if (saw_shard_info_) {
        return fail("wire: duplicate shard-info record in " + stream_->path());
      }
      if (records_seen_ != 0) {
        return fail("wire: out-of-order shard-info record in " + stream_->path());
      }
      Cursor c = MakeCursor(scratch_);
      uint32_t id = 0;
      if (!c.TakeU32(&id) || !c.AtEnd()) {
        return fail("wire: malformed shard-info record in " + stream_->path());
      }
      if (id == 0) {
        return fail("wire: shard-info record with shard id 0 in " + stream_->path());
      }
      saw_shard_info_ = true;
      records_seen_++;
      shard_id_ = id;
      continue;
    }
    records_seen_++;
    Result<TraceEvent> decoded = DecodeTraceEvent(type, scratch_, stream_->path());
    if (!decoded.ok()) {
      return fail(decoded.error());
    }
    *event = std::move(decoded).value();
    last_payload_offset_ = stream_->last_payload_offset();
    last_payload_bytes_ = scratch_.size();
    last_record_type_ = type;
    last_payload_crc_ = stream_->last_crc();
    return true;
  }
}

Status WriteTraceFile(const std::string& path, const Trace& trace, uint32_t shard_id,
                      Env* env) {
  TraceWriter writer;
  if (Status st = writer.Open(path, shard_id, env); !st.ok()) {
    return st;
  }
  for (const TraceEvent& e : trace.events) {
    if (Status st = writer.Append(e); !st.ok()) {
      return st;
    }
  }
  return writer.Finish();
}

Result<Trace> ReadTraceFile(const std::string& path, Env* env) {
  TraceReader reader;
  if (Status st = reader.Open(path, env); !st.ok()) {
    return Result<Trace>::Error(st.error());
  }
  Trace trace;
  while (true) {
    TraceEvent e;
    Result<bool> more = reader.Next(&e);
    if (!more.ok()) {
      return Result<Trace>::Error(more.error());
    }
    if (!more.value()) {
      break;
    }
    trace.events.push_back(std::move(e));
  }
  return trace;
}

Result<TraceEvent> DecodeTraceEventPayload(uint8_t record_type, const std::string& payload) {
  return DecodeTraceEvent(record_type, payload, "trace file");
}

void EncodeTraceEventRecord(const TraceEvent& event, uint8_t* type, std::string* payload) {
  *type = TraceEventRecordType(event);
  EncodeTraceEvent(event, payload);
}

void ForEachReportsRecord(const Reports& reports,
                          const std::function<void(uint8_t, const std::string&)>& fn) {
  EnumerateReportsRecords(reports, /*nondet_only=*/false, fn);
}

// --- Shard manifest files ---

Status WriteShardManifestFile(const std::string& path, const ShardManifest& manifest,
                              Env* env) {
  return WriteSectionFileAtomically(path, env, [&](Sink* sink) {
    sink->WriteHeader(wire::Section::kManifest);
    std::string payload;
    if (manifest.epoch != 0) {
      PutU64(&payload, manifest.epoch);
      sink->WriteRecord(kRecManifestEpoch, payload);
    }
    for (const ShardManifestEntry& shard : manifest.shards) {
      payload.clear();
      PutU32(&payload, shard.shard_id);
      PutStr(&payload, shard.trace_file);
      PutStr(&payload, shard.reports_file);
      sink->WriteRecord(kRecManifestShard, payload);
    }
    sink->WriteEnd();
  });
}

Result<ShardManifest> ReadShardManifestFile(const std::string& path, Env* env) {
  ShardManifest out;
  bool saw_epoch = false;
  bool saw_shard = false;
  std::set<uint32_t> shard_ids;
  Status st = ReadSectionFile(
      path, wire::Section::kManifest, env, [&](uint8_t type, const std::string& payload) {
        Cursor c = MakeCursor(payload);
        switch (type) {
          case kRecManifestEpoch:
            // Same in-section header discipline as the trace shard-info record: at most
            // one, and before every shard entry.
            if (saw_epoch) {
              return Status::Error("wire: duplicate epoch record in " + path);
            }
            if (saw_shard) {
              return Status::Error("wire: out-of-order epoch record in " + path);
            }
            saw_epoch = true;
            if (!c.TakeU64(&out.epoch) || !c.AtEnd()) {
              return Status::Error("wire: malformed epoch record in " + path);
            }
            return Status::Ok();
          case kRecManifestShard: {
            saw_shard = true;
            ShardManifestEntry shard;
            if (!c.TakeU32(&shard.shard_id) || !c.TakeStr(&shard.trace_file) ||
                !c.TakeStr(&shard.reports_file) || !c.AtEnd()) {
              return Status::Error("wire: malformed shard record in " + path);
            }
            if (!shard_ids.insert(shard.shard_id).second) {
              return Status::Error("wire: duplicate shard id " +
                                   std::to_string(shard.shard_id) + " in " + path);
            }
            out.shards.push_back(std::move(shard));
            return Status::Ok();
          }
          default:
            return Status::Error("wire: unknown manifest record type " +
                                 std::to_string(type) + " in " + path);
        }
      });
  if (!st.ok()) {
    return Result<ShardManifest>::Error(st.error());
  }
  return out;
}

// --- ReportsWriter / ReportsReader ---

Status ReportsWriter::WriteFile(const std::string& path, const Reports& reports,
                                Env* env) {
  return WriteSectionFileAtomically(path, env, [&](Sink* sink) {
    WriteReportsToSink(sink, reports, /*nondet_only=*/false);
  });
}

Result<Reports> ReportsReader::ReadFile(const std::string& path, Env* env) {
  // Drives the same streaming reader + per-record decoder the out-of-core index uses, so
  // the two paths accept exactly the same byte streams with exactly the same errors.
  ReportsRecordReader reader;
  if (Status st = reader.Open(path, env); !st.ok()) {
    return Result<Reports>::Error(st.error());
  }
  Reports out;
  ReportsDecodeState state;
  uint8_t type = 0;
  std::string payload;
  while (true) {
    Result<bool> more = reader.Next(&type, &payload);
    if (!more.ok()) {
      return Result<Reports>::Error(more.error());
    }
    if (!more.value()) {
      break;
    }
    if (Status st = DecodeReportsRecordPayload(type, payload, path, &state, &out);
        !st.ok()) {
      return Result<Reports>::Error(st.error());
    }
  }
  return out;
}

ReportsRecordReader::ReportsRecordReader() = default;

ReportsRecordReader::~ReportsRecordReader() = default;

Status ReportsRecordReader::Open(const std::string& path, Env* env) {
  if (stream_ != nullptr) {
    return Status::Error("wire: ReportsRecordReader already open");
  }
  auto stream = std::make_unique<wire::RecordStream>();
  if (Status st = stream->Open(env, path, wire::Section::kReports); !st.ok()) {
    return st;
  }
  stream_ = std::move(stream);
  return Status::Ok();
}

Result<bool> ReportsRecordReader::Next(uint8_t* type, std::string* payload) {
  if (done_) {
    // A clean end stays a clean end on repeated calls; a failure stays sticky.
    if (!error_.empty()) {
      return Result<bool>::Error(error_);
    }
    return false;
  }
  if (stream_ == nullptr) {
    return Result<bool>::Error("wire: ReportsRecordReader is not open");
  }
  Result<bool> more = stream_->Next(type, payload);
  if (!more.ok() || !more.value()) {
    done_ = true;
    stream_.reset();
    if (!more.ok()) {
      error_ = more.error();
      return Result<bool>::Error(error_);
    }
    return false;
  }
  last_payload_offset_ = stream_->last_payload_offset();
  last_payload_bytes_ = payload->size();
  last_payload_crc_ = stream_->last_crc();
  return true;
}

// --- InitialState files ---

Status WriteInitialStateFile(const std::string& path, const InitialState& state,
                             Env* env) {
  return WriteSectionFileAtomically(
      path, env, [&](Sink* sink) { WriteStateToSink(sink, state); });
}

Result<InitialState> ReadInitialStateFile(const std::string& path, Env* env) {
  InitialState out;
  bool saw_registers = false;
  bool saw_kv = false;
  Status st = ReadSectionFile(path, wire::Section::kState, env,
                              [&](uint8_t type, const std::string& payload) {
                                return DecodeStateRecord(type, payload, path, &saw_registers,
                                                         &saw_kv, &out);
                              });
  if (!st.ok()) {
    return Result<InitialState>::Error(st.error());
  }
  return out;
}

// --- exact wire sizes ---

size_t TraceWireBytes(const Trace& trace) {
  // Sum record sizes directly instead of re-encoding: framing + fixed fields + strings.
  size_t bytes = kHeaderBytes +
                 kRecordFrameBytesV2 + wire::kFooterPayloadBytes;  // Header + end record.
  for (const TraceEvent& e : trace.events) {
    bytes += kRecordFrameBytesV2 + 8;  // rid.
    if (e.kind == TraceEvent::Kind::kRequest) {
      bytes += StrWireBytes(e.script) + 4;
      for (const auto& [k, v] : e.params) {
        bytes += StrWireBytes(k) + StrWireBytes(v);
      }
    } else {
      bytes += StrWireBytes(e.body);
    }
  }
  return bytes;
}

size_t ReportsWireBytes(const Reports& reports, bool nondet_only) {
  Sink sink;  // Counting only: same encoder as WriteFile, so the count is exact.
  WriteReportsToSink(&sink, reports, nondet_only);
  return sink.bytes();
}

size_t InitialStateWireBytes(const InitialState& state) {
  Sink sink;
  WriteStateToSink(&sink, state);
  return sink.bytes();
}

// Declared in trace.h / reports.h; defined here next to the encoders they price.
size_t Trace::WireBytes() const { return TraceWireBytes(*this); }

size_t Reports::WireBytes(bool nondet_only) const {
  return ReportsWireBytes(*this, nondet_only);
}

}  // namespace orochi
