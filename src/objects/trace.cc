#include "src/objects/trace.h"

#include <unordered_map>
#include <unordered_set>

namespace orochi {

size_t Trace::NumRequests() const {
  size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      n++;
    }
  }
  return n;
}

Status CheckTraceBalanced(const Trace& trace) {
  std::unordered_set<RequestId> seen_requests;
  std::unordered_set<RequestId> open_requests;
  std::unordered_set<RequestId> responded;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEvent::Kind::kRequest) {
      if (!seen_requests.insert(e.rid).second) {
        return Status::Error("trace: duplicate requestID " + std::to_string(e.rid));
      }
      open_requests.insert(e.rid);
    } else {
      if (open_requests.count(e.rid) == 0) {
        return Status::Error("trace: response without matching open request, rid " +
                             std::to_string(e.rid));
      }
      open_requests.erase(e.rid);
      if (!responded.insert(e.rid).second) {
        return Status::Error("trace: duplicate response for rid " + std::to_string(e.rid));
      }
    }
  }
  if (!open_requests.empty()) {
    return Status::Error("trace: " + std::to_string(open_requests.size()) +
                         " request(s) without responses");
  }
  return Status::Ok();
}

}  // namespace orochi
