// The untrusted reports the executor hands the verifier (paper §3, §4.6):
//   C  — control-flow groupings (opaque tag -> requestIDs),
//   OL — per-object operation logs,
//   M  — per-request operation counts,
//   ND — non-determinism records (return values of time/microtime/rand).
#ifndef SRC_OBJECTS_REPORTS_H_
#define SRC_OBJECTS_REPORTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/objects/object_model.h"

namespace orochi {

struct NondetRecord {
  std::string name;   // Builtin name ("time", "microtime", "rand").
  std::string value;  // Canonically serialized return value.
};

struct Reports {
  // Object table: index in this vector is the object id i; op_logs[i] is OLi.
  std::vector<ObjectDesc> objects;
  std::vector<std::vector<OpRecord>> op_logs;

  // Control-flow groupings: opaque tag -> requestIDs (paper §3.1).
  std::map<uint64_t, std::vector<RequestId>> groups;

  // Op counts M: requestID -> total state operations issued (paper §3.3).
  std::unordered_map<RequestId, uint32_t> op_counts;

  // Non-determinism reports: requestID -> values returned by nondet builtins, in call
  // order (paper §4.6).
  std::unordered_map<RequestId, std::vector<NondetRecord>> nondet;

  // Finds the object id for a descriptor; -1 when absent.
  int FindObject(ObjectKind kind, const std::string& name) const;

  // Exact size of these reports' wire-format spill file (src/objects/wire_format.h), for
  // the Figure 8 report-overhead columns. The `nondet_only` flag sizes a file carrying
  // just the ND reports (the paper's baseline is charged only for nondeterminism reports,
  // §5.1). Implemented in wire_format.cc against the real encoder.
  size_t WireBytes(bool nondet_only = false) const;
};

// How AppendReports folded `src` into `dst`: src object id i landed at dst object id
// object_remap[i], and src's log entries for i were appended after the first
// seqnum_base[i] entries of the dst log (so src seqnum s became dst seqnum
// seqnum_base[i] + s). The out-of-core reports index uses this to remap per-entry byte
// locations alongside the skeleton merge.
struct ReportsMergeMap {
  std::vector<size_t> object_remap;
  std::vector<uint64_t> seqnum_base;
};

// Appends a later epoch's reports onto `dst`, producing the reports a single continuous
// recording over both periods would have handed the verifier: per-object op logs
// concatenate in epoch order (object ids are remapped by descriptor), groups with the same
// control-flow tag merge, and the per-request maps union. Errors when a requestID appears
// in both epochs — epoch traces must not share rids if their concatenation is to stay
// balanced. Used to cross-check an epoch-chained AuditSession against one monolithic
// audit, and (with `map`) by the sharded out-of-core merge. `map`, when non-null, is
// filled with the applied remapping; untouched on error.
Status AppendReports(Reports* dst, const Reports& src, ReportsMergeMap* map = nullptr);

}  // namespace orochi

#endif  // SRC_OBJECTS_REPORTS_H_
