// Conversions between SQL results and wscript values, and the canonical result shapes the
// db_query / db_txn builtins return. Used identically by the online server and the
// audit-time re-executor so both sides see the same program-visible values.
#ifndef SRC_OBJECTS_DB_ADAPTER_H_
#define SRC_OBJECTS_DB_ADAPTER_H_

#include <vector>

#include "src/lang/value.h"
#include "src/sql/database.h"
#include "src/sql/sql_value.h"

namespace orochi {

Value SqlValueToValue(const SqlValue& v);

// SELECT -> array of rows (row = array column => value); writes -> affected count.
Value StmtResultToValue(const StmtResult& r);

// db_query: result value of a successful single statement; a failed statement yields null.
Value DbQueryFailureValue();

// db_txn: [committed, [per-statement results...]].
Value DbTxnResultToValue(bool committed, const std::vector<StmtResult>& results);

}  // namespace orochi

#endif  // SRC_OBJECTS_DB_ADAPTER_H_
