#include "src/objects/db_adapter.h"

namespace orochi {

Value SqlValueToValue(const SqlValue& v) {
  if (v.is_null()) {
    return Value::Null();
  }
  if (v.is_int()) {
    return Value::Int(v.as_int());
  }
  if (v.is_float()) {
    return Value::Float(v.as_float());
  }
  return Value::Str(v.as_text());
}

Value StmtResultToValue(const StmtResult& r) {
  if (!r.is_rows) {
    return Value::Int(r.affected);
  }
  Value rows = Value::Array();
  ArrayObject& rows_arr = rows.MutableArray();
  for (const SqlRow& row : r.rows.rows) {
    Value row_val = Value::Array();
    ArrayObject& row_arr = row_val.MutableArray();
    for (size_t i = 0; i < row.size(); i++) {
      row_arr.Set(ArrayKey(r.rows.columns[i]), SqlValueToValue(row[i]));
    }
    rows_arr.Append(std::move(row_val));
  }
  return rows;
}

Value DbQueryFailureValue() { return Value::Null(); }

Value DbTxnResultToValue(bool committed, const std::vector<StmtResult>& results) {
  Value out = Value::Array();
  ArrayObject& arr = out.MutableArray();
  arr.Append(Value::Bool(committed));
  Value result_list = Value::Array();
  ArrayObject& list_arr = result_list.MutableArray();
  for (const StmtResult& r : results) {
    list_arr.Append(StmtResultToValue(r));
  }
  arr.Append(std::move(result_list));
  return out;
}

}  // namespace orochi
