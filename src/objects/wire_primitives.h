// Little-endian encode primitives and the defensive payload cursor shared by the wire
// format proper (src/objects/wire_format.cc) and the checkpoint journal
// (src/stream/checkpoint.cc). Internal — not part of the public wire surface.
#ifndef SRC_OBJECTS_WIRE_PRIMITIVES_H_
#define SRC_OBJECTS_WIRE_PRIMITIVES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace orochi {
namespace wire_primitives {

inline void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

inline size_t StrWireBytes(const std::string& s) { return 4 + s.size(); }

// Defensive cursor over an in-memory payload: every Take checks bounds, so a forged
// length can neither over-read nor trigger a huge allocation.
struct Cursor {
  const unsigned char* p;
  size_t n;
  size_t pos = 0;

  bool TakeU8(uint8_t* v) {
    if (pos + 1 > n) {
      return false;
    }
    *v = p[pos++];
    return true;
  }
  bool TakeU32(uint32_t* v) {
    if (pos + 4 > n) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; i++) {
      *v |= static_cast<uint32_t>(p[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (pos + 8 > n) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; i++) {
      *v |= static_cast<uint64_t>(p[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool TakeF64(double* v) {
    uint64_t bits;
    if (!TakeU64(&bits)) {
      return false;
    }
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool TakeStr(std::string* s) {
    uint32_t len;
    if (!TakeU32(&len) || pos + len > n) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(p) + pos, len);
    pos += len;
    return true;
  }
  bool SkipStr() {
    uint32_t len;
    if (!TakeU32(&len) || pos + len > n) {
      return false;
    }
    pos += len;
    return true;
  }
  bool AtEnd() const { return pos == n; }

  size_t Remaining() const { return n - pos; }

  // True when a declared element count could fit in the remaining payload, each element
  // costing at least `min_element_bytes`. Checked before any reserve/loop so a forged
  // count can neither trigger a huge allocation (vector::reserve would throw, and this
  // codebase is exception-free) nor spin a long loop.
  bool CountFits(uint64_t count, size_t min_element_bytes) const {
    return count <= Remaining() / min_element_bytes;
  }
};

inline Cursor MakeCursor(const std::string& bytes) {
  return Cursor{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()};
}

}  // namespace wire_primitives
}  // namespace orochi

#endif  // SRC_OBJECTS_WIRE_PRIMITIVES_H_
