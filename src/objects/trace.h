// The trace: the trusted, ordered record of requests into and responses out of the
// executor, produced by the collector (paper §2, Figure 1).
#ifndef SRC_OBJECTS_TRACE_H_
#define SRC_OBJECTS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/lang/interpreter.h"
#include "src/objects/object_model.h"

namespace orochi {

struct TraceEvent {
  enum class Kind : uint8_t { kRequest, kResponse };

  Kind kind;
  RequestId rid;
  // kRequest payload: which script ran and its inputs.
  std::string script;
  RequestParams params;
  // kResponse payload.
  std::string body;
};

struct Trace {
  std::vector<TraceEvent> events;

  size_t NumRequests() const;
  // Exact size of this trace's wire-format spill file (src/objects/wire_format.h), used by
  // the report-overhead ratios of Figure 8. Implemented in wire_format.cc so the number is
  // the byte count `WriteTraceFile` actually produces.
  size_t WireBytes() const;
};

// Balanced-trace validation (paper §3): every response follows its request, every request
// has exactly one response, and requestIDs are unique. The verifier runs this before
// invoking the audit.
Status CheckTraceBalanced(const Trace& trace);

}  // namespace orochi

#endif  // SRC_OBJECTS_TRACE_H_
