#include "src/objects/stores.h"

#include <algorithm>

namespace orochi {

Value RegisterStore::Read(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regs_.find(name);
  return it == regs_.end() ? Value::Null() : it->second;
}

void RegisterStore::Write(const std::string& name, Value v) {
  std::lock_guard<std::mutex> lock(mu_);
  regs_[name] = std::move(v);
}

std::map<std::string, Value> RegisterStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regs_;
}

void RegisterStore::Load(const std::map<std::string, Value>& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  regs_ = snapshot;
}

Value KvStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kv_.find(key);
  return it == kv_.end() ? Value::Null() : it->second;
}

void KvStore::Set(const std::string& key, Value v) {
  std::lock_guard<std::mutex> lock(mu_);
  // Storing null deletes (APC-style): gets of absent keys already return null, so null
  // values and absent keys are indistinguishable to programs.
  if (v.is_null()) {
    kv_.erase(key);
    return;
  }
  kv_[key] = std::move(v);
}

std::map<std::string, Value> KvStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kv_;
}

void KvStore::Load(const std::map<std::string, Value>& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  kv_ = snapshot;
}

void VersionedKv::LoadInitial(const std::map<std::string, Value>& snapshot) {
  for (const auto& [key, v] : snapshot) {
    writes_[key].emplace_back(0, v);
  }
}

void VersionedKv::AddSet(const std::string& key, uint64_t seqnum, Value v) {
  writes_[key].emplace_back(seqnum, std::move(v));
}

std::map<std::string, Value> VersionedKv::LatestSnapshot() const {
  std::map<std::string, Value> out;
  for (const auto& [key, versions] : writes_) {
    if (!versions.empty() && !versions.back().second.is_null()) {
      out[key] = versions.back().second;
    }
  }
  return out;
}

Value VersionedKv::Get(const std::string& key, uint64_t seqnum) const {
  auto it = writes_.find(key);
  if (it == writes_.end()) {
    return Value::Null();
  }
  const auto& versions = it->second;
  // Last write with seq < seqnum.
  auto pos = std::lower_bound(
      versions.begin(), versions.end(), seqnum,
      [](const std::pair<uint64_t, Value>& a, uint64_t s) { return a.first < s; });
  if (pos == versions.begin()) {
    return Value::Null();
  }
  --pos;
  return pos->second;
}

std::string InitialStateFingerprint(const InitialState& s) {
  std::string out;
  for (const auto& [name, v] : s.registers) {
    out += "R " + name + " = " + v.Serialize() + "\n";
  }
  for (const auto& [key, v] : s.kv) {
    out += "K " + key + " = " + v.Serialize() + "\n";
  }
  for (const std::string& table : s.db.TableNames()) {
    out += "T " + table + " [";
    const std::vector<ColumnDef>* schema = s.db.Schema(table);
    if (schema != nullptr) {
      for (const ColumnDef& c : *schema) {
        out += c.name + ",";
      }
    }
    out += "]\n";
    const std::vector<SqlRow>* rows = s.db.Rows(table);
    if (rows == nullptr) {
      continue;
    }
    for (const SqlRow& row : *rows) {
      for (const SqlValue& v : row) {
        out += v.is_null() ? std::string("NULL") : v.ToText();
        out += "|";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace orochi
