// Shared-object identity and the operation-record format used in reports.
//
// Objects (paper §3.2, §4.4): every per-user session register is its own atomic object; the
// APC-style key-value store is one linearizable object; the SQL database is one strictly
// serializable object. Reports identify objects by index into an object table, and each
// object's operation log is a sequence of OpRecords. Everything here is plain data —
// reports are untrusted and the verifier parses them defensively.
#ifndef SRC_OBJECTS_OBJECT_MODEL_H_
#define SRC_OBJECTS_OBJECT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/lang/step_result.h"
#include "src/lang/value.h"

namespace orochi {

using RequestId = uint64_t;

enum class ObjectKind : uint8_t { kRegister, kKv, kDb };

const char* ObjectKindName(ObjectKind k);

// Object-table entry: `name` is the register name; empty for the KV store and database.
struct ObjectDesc {
  ObjectKind kind;
  std::string name;

  bool operator==(const ObjectDesc& o) const { return kind == o.kind && name == o.name; }
};

// One entry of an operation log (paper §3.3): OLi : N+ -> (rid, opnum, optype, opcontents).
struct OpRecord {
  RequestId rid = 0;
  uint32_t opnum = 0;  // 1-based, per request.
  StateOpType type = StateOpType::kRegisterRead;
  std::string contents;  // Canonical operand encoding; see helpers below.
};

// --- opcontents encodings ---
// RegisterRead / KvGet: empty / raw key. RegisterWrite: serialized value.
// KvSet: serialized [key, value]. DbOp: serialized [[stmts...], is_txn, success].

std::string MakeRegisterWriteContents(const Value& value);
std::string MakeKvSetContents(const std::string& key, const Value& value);
std::string MakeDbContents(const std::vector<std::string>& sql, bool is_txn, bool success);

// Append variants writing into a caller-owned (reusable) buffer. CheckOp compares one of
// these encodings per simulated write, so the audit hot path uses these to avoid a fresh
// heap string per operation.
void AppendRegisterWriteContents(std::string* out, const Value& value);
void AppendKvSetContents(std::string* out, const std::string& key, const Value& value);

struct DbContents {
  std::vector<std::string> sql;
  bool is_txn = false;
  bool success = true;
};

Result<Value> ParseRegisterWriteContents(const std::string& contents);
struct KvSetContents {
  std::string key;
  Value value;
};
Result<KvSetContents> ParseKvSetContents(const std::string& contents);
Result<DbContents> ParseDbContents(const std::string& contents);

}  // namespace orochi

#endif  // SRC_OBJECTS_OBJECT_MODEL_H_
