#include "src/objects/object_model.h"

namespace orochi {

const char* ObjectKindName(ObjectKind k) {
  switch (k) {
    case ObjectKind::kRegister: return "register";
    case ObjectKind::kKv: return "kv";
    case ObjectKind::kDb: return "db";
  }
  return "?";
}

std::string MakeRegisterWriteContents(const Value& value) { return value.Serialize(); }

void AppendRegisterWriteContents(std::string* out, const Value& value) {
  value.SerializeTo(out);
}

void AppendKvSetContents(std::string* out, const std::string& key, const Value& value) {
  // Emits exactly what serializing the two-entry array [key, value] produces, without
  // materializing the ArrayObject: A:2:{I:0;S:<len>:<key>;I:1;<value>}.
  out->append("A:2:{I:0;S:");
  out->append(std::to_string(key.size()));
  out->append(":");
  out->append(key);
  out->append(";I:1;");
  value.SerializeTo(out);
  out->append("}");
}

std::string MakeKvSetContents(const std::string& key, const Value& value) {
  std::string out;
  AppendKvSetContents(&out, key, value);
  return out;
}

std::string MakeDbContents(const std::vector<std::string>& sql, bool is_txn, bool success) {
  Value root = Value::Array();
  ArrayObject& arr = root.MutableArray();
  Value stmts = Value::Array();
  ArrayObject& stmt_arr = stmts.MutableArray();
  for (const std::string& s : sql) {
    stmt_arr.Append(Value::Str(s));
  }
  arr.Append(std::move(stmts));
  arr.Append(Value::Bool(is_txn));
  arr.Append(Value::Bool(success));
  return root.Serialize();
}

Result<Value> ParseRegisterWriteContents(const std::string& contents) {
  return DeserializeValue(contents);
}

Result<KvSetContents> ParseKvSetContents(const std::string& contents) {
  Result<Value> v = DeserializeValue(contents);
  if (!v.ok()) {
    return Result<KvSetContents>::Error(v.error());
  }
  const Value& root = v.value();
  if (!root.is_array() || root.array().size() != 2) {
    return Result<KvSetContents>::Error("kv-set contents: expected [key, value]");
  }
  const Value* key = root.array().Find(ArrayKey(int64_t{0}));
  const Value* val = root.array().Find(ArrayKey(int64_t{1}));
  if (key == nullptr || val == nullptr || !key->is_string()) {
    return Result<KvSetContents>::Error("kv-set contents: malformed");
  }
  KvSetContents out;
  out.key = key->as_string();
  out.value = *val;
  return out;
}

Result<DbContents> ParseDbContents(const std::string& contents) {
  Result<Value> v = DeserializeValue(contents);
  if (!v.ok()) {
    return Result<DbContents>::Error(v.error());
  }
  const Value& root = v.value();
  if (!root.is_array() || root.array().size() != 3) {
    return Result<DbContents>::Error("db contents: expected [stmts, is_txn, success]");
  }
  const Value* stmts = root.array().Find(ArrayKey(int64_t{0}));
  const Value* is_txn = root.array().Find(ArrayKey(int64_t{1}));
  const Value* success = root.array().Find(ArrayKey(int64_t{2}));
  if (stmts == nullptr || is_txn == nullptr || success == nullptr || !stmts->is_array() ||
      !is_txn->is_bool() || !success->is_bool()) {
    return Result<DbContents>::Error("db contents: malformed");
  }
  DbContents out;
  for (const auto& [k, s] : stmts->array().entries()) {
    (void)k;
    if (!s.is_string()) {
      return Result<DbContents>::Error("db contents: statement is not a string");
    }
    out.sql.push_back(s.as_string());
  }
  if (out.sql.empty()) {
    return Result<DbContents>::Error("db contents: no statements");
  }
  out.is_txn = is_txn->as_bool();
  out.success = success->as_bool();
  return out;
}

}  // namespace orochi
