// Live shared-object stores used by the online server, plus the initial-state snapshot the
// verifier needs to bootstrap an audit (paper §4.1 "persistent objects").
#ifndef SRC_OBJECTS_STORES_H_
#define SRC_OBJECTS_STORES_H_

#include <map>
#include <mutex>
#include <string>

#include "src/lang/value.h"
#include "src/sql/database.h"

namespace orochi {

// Atomic registers keyed by name (per-user session data, §4.4). A single mutex gives
// per-operation atomicity (stronger than required register semantics).
class RegisterStore {
 public:
  Value Read(const std::string& name) const;
  void Write(const std::string& name, Value v);
  std::map<std::string, Value> Snapshot() const;
  void Load(const std::map<std::string, Value>& snapshot);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Value> regs_;
};

// Linearizable key-value store (the APC analog, §4.4).
class KvStore {
 public:
  Value Get(const std::string& key) const;
  void Set(const std::string& key, Value v);
  std::map<std::string, Value> Snapshot() const;
  void Load(const std::map<std::string, Value>& snapshot);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Value> kv_;
};

// The state the verifier trusts as the beginning-of-audit-period contents of every object
// (produced by the previous audit in steady state, §4.5).
struct InitialState {
  std::map<std::string, Value> registers;
  std::map<std::string, Value> kv;
  Database db;
};

// Canonical fingerprint of an InitialState: register/kv maps are ordered and DB row order
// is fixed by the audit's single-threaded redo pass, so equal strings mean byte-identical
// states. Tests and benches use this to assert that audits at different thread counts
// hand off the same final state.
std::string InitialStateFingerprint(const InitialState& s);

// Audit-time versioned key-value store (paper §A.7): key -> ordered (seqnum, value) writes;
// get(key, s) returns the value of the KvSet with the highest seqnum < s, falling back to
// the initial snapshot.
class VersionedKv {
 public:
  void LoadInitial(const std::map<std::string, Value>& snapshot);
  // Records the KvSet at log position `seqnum` (1-based; appends must be monotone).
  void AddSet(const std::string& key, uint64_t seqnum, Value v);
  Value Get(const std::string& key, uint64_t seqnum) const;

  // Final contents (last write per key, nulls elided): the state kept for the next audit.
  std::map<std::string, Value> LatestSnapshot() const;

 private:
  std::map<std::string, std::vector<std::pair<uint64_t, Value>>> writes_;
};

}  // namespace orochi

#endif  // SRC_OBJECTS_STORES_H_
